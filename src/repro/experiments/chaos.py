"""Chaos sweep: delivery and convergence under injected faults.

The paper's §4.3 soft state (TTL leases, refresh-or-restore renewals,
3×TTL purge) is a *fault tolerance* mechanism, but the other experiments
never exercise it: links are perfect and brokers immortal.  This sweep
runs a quote workload through a seeded :class:`~repro.sim.network.FaultPlan`
— a window of per-link loss, duplication, and latency jitter containing
one broker crash/restart — and measures

- **delivery ratio** per phase (before / during / after the fault
  window) against ground truth computed from the subscriptions,
- **exactly-once**: no subscriber sees a duplicate delivery of an event
  published outside the fault window,
- **convergence time**: how long after the window closes until the
  covering invariant holds at every broker and all reliable-channel
  frames are acknowledged,
- the reliability counters (control retransmits, duplicate frames
  discarded) and the network's drop/duplication accounting.

The headline claim mirrors the paper's: events published outside fault
windows are delivered exactly once to every matching subscriber, with
the control plane reconverging within a bounded time after heal.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.engine import MultiStageEventSystem
from repro.metrics.report import (
    render_fault_alignment,
    render_hottest_brokers,
    render_network_summary,
    render_reliability_summary,
    render_series,
    render_stage_latency_histograms,
    render_table,
    render_trace_path,
)
from repro.overlay.invariants import covering_violations
from repro.sim.network import FaultPlan
from repro.sim.rng import RngRegistry

CHAOS_EVENT_CLASS = "Quote"
SCHEMA = ("class", "symbol", "price")
SYMBOLS = tuple(f"SYM{i}" for i in range(8))


class Quote:
    """Minimal quote event; ``uid`` rides in the opaque payload only
    (no getter, so reflection keeps it out of the routing meta-data)."""

    def __init__(self, symbol: str, price: int, uid: int):
        self._symbol = symbol
        self._price = price
        self.uid = uid

    def get_symbol(self) -> str:
        return self._symbol

    def get_price(self) -> int:
        return self._price


@dataclass(frozen=True)
class _SubscriptionSpec:
    """Ground truth for one subscription: symbol (None = wildcard) and
    exclusive price bound."""

    subscriber: str
    symbol: Optional[str]
    bound: int

    def matches(self, symbol: str, price: int) -> bool:
        if self.symbol is not None and self.symbol != symbol:
            return False
        return price < self.bound


@dataclass
class ChaosConfig:
    """Knobs of one chaos run (defaults are CI-sized)."""

    stage_sizes: Tuple[int, ...] = (4, 2, 1)
    n_subscribers: int = 12
    #: Every ``wildcard_every``-th subscriber drops the symbol constraint
    #: (attaching above stage 1, so the crash also hits wildcard homes).
    wildcard_every: int = 4
    events_per_phase: int = 20
    seed: int = 7
    ttl: float = 10.0
    #: Fault-window link faults (probabilities / seconds).
    loss: float = 0.10
    duplicate: float = 0.05
    jitter: float = 0.005
    window_duration: float = 8.0
    #: The crashed broker: index into the stage-2 node list.
    crash_stage: int = 2
    crash_after: float = 1.0
    crash_duration: float = 4.0
    #: Give up measuring convergence after this long past heal.
    max_convergence: float = 80.0
    aggregate: bool = True
    reliable: bool = True
    #: Causal span tracing + per-stage sampling (the observability layer).
    tracing: bool = False
    sample_interval: float = 0.5


@dataclass
class ChaosResult:
    """Measurements from one chaos run."""

    config: ChaosConfig
    #: Delivered / expected (subscription, event) pairs per phase.
    pre_ratio: float = 0.0
    during_ratio: float = 0.0
    post_ratio: float = 0.0
    #: Max copies of one (subscription, event) delivery, per phase.
    pre_max_copies: int = 0
    post_max_copies: int = 0
    #: Simulated seconds from window close to a quiesced, hole-free
    #: control plane (``max_convergence`` if never reached).
    convergence_time: float = 0.0
    #: Covering violations still open when measurement stopped.
    violations_after: int = 0
    control_retransmits: int = 0
    control_dups_discarded: int = 0
    dropped_messages: int = 0
    dropped_bytes: int = 0
    duplicated_messages: int = 0
    #: The link-fault window and the broker crash window, in sim time.
    fault_window: Tuple[float, float] = (0.0, 0.0)
    crash_window: Tuple[float, float] = (0.0, 0.0)
    system: MultiStageEventSystem = field(default=None, repr=False)

    @property
    def tracer(self):
        return self.system.tracer

    @property
    def sampler(self):
        return self.system.sampler

    @property
    def converged(self) -> bool:
        return self.violations_after == 0

    @property
    def exactly_once(self) -> bool:
        """No duplicate deliveries of events published outside faults."""
        return self.pre_max_copies <= 1 and self.post_max_copies <= 1


def _build_system(config: ChaosConfig):
    system = MultiStageEventSystem(
        stage_sizes=config.stage_sizes,
        ttl=config.ttl,
        seed=config.seed,
        aggregate=config.aggregate,
        reliable=config.reliable,
        tracing=config.tracing,
    )
    system.advertise(CHAOS_EVENT_CLASS, schema=SCHEMA)
    system.drain()

    rngs = RngRegistry(config.seed)
    sub_rng = rngs.stream("chaos/subscriptions")
    specs: List[_SubscriptionSpec] = []
    deliveries: Dict[str, List[int]] = {}

    def recorder(name: str):
        log = deliveries.setdefault(name, [])

        def handler(event, metadata, subscription):
            log.append(event.uid)

        return handler

    for index in range(config.n_subscribers):
        subscriber = system.create_subscriber(f"chaos-sub-{index}")
        bound = sub_rng.randrange(3, 10)
        if config.wildcard_every and index % config.wildcard_every == 0:
            symbol = None
            text = f'class = "{CHAOS_EVENT_CLASS}" and price < {bound}'
        else:
            symbol = sub_rng.choice(SYMBOLS)
            text = (
                f'class = "{CHAOS_EVENT_CLASS}" and symbol = "{symbol}" '
                f"and price < {bound}"
            )
        specs.append(_SubscriptionSpec(subscriber.name, symbol, bound))
        system.subscribe(
            subscriber,
            text,
            event_class=CHAOS_EVENT_CLASS,
            handler=recorder(subscriber.name),
        )
        system.drain()
    return system, specs, deliveries, rngs


def run_chaos(config: Optional[ChaosConfig] = None) -> ChaosResult:
    """Run the pre → fault → heal → post pipeline and measure."""
    config = config or ChaosConfig()
    system, specs, deliveries, rngs = _build_system(config)
    result = ChaosResult(config=config, system=system)
    event_rng = rngs.stream("chaos/events")
    publisher = system.create_publisher("chaos-feed")
    uids = iter(range(1_000_000))
    events: Dict[int, Tuple[str, int]] = {}

    def publish_one() -> int:
        uid = next(uids)
        symbol = event_rng.choice(SYMBOLS)
        price = event_rng.randrange(0, 12)
        events[uid] = (symbol, price)
        publisher.publish(Quote(symbol, price, uid), event_class=CHAOS_EVENT_CLASS)
        return uid

    system.start_maintenance()
    if config.tracing:
        system.start_sampling(config.sample_interval)
    system.run_for(1.0)

    # Phase 1: clean traffic, no faults anywhere near the wire.
    pre_uids = []
    for _ in range(config.events_per_phase):
        pre_uids.append(publish_one())
        system.run_for(0.05)
    system.run_for(1.0)

    # Phase 2: the fault window — lossy, duplicating, jittery links plus
    # one stage-``crash_stage`` broker crash/restart in the middle.
    window_start = system.sim.now + 0.5
    window_end = window_start + config.window_duration
    plan = FaultPlan(seed=config.seed)
    plan.add_window(
        window_start,
        window_end,
        loss=config.loss,
        duplicate=config.duplicate,
        jitter=config.jitter,
    )
    victims = system.hierarchy.nodes(config.crash_stage)
    victim = victims[0]
    crash_at = window_start + config.crash_after
    plan.add_crash(victim, crash_at, config.crash_duration)
    result.fault_window = (window_start, window_end)
    result.crash_window = (crash_at, crash_at + config.crash_duration)
    system.network.install_faults(plan)
    system.run_for(0.5)

    during_uids = []
    step = config.window_duration / max(1, config.events_per_phase)
    for _ in range(config.events_per_phase):
        during_uids.append(publish_one())
        system.run_for(step)
    if system.sim.now < window_end:
        system.run_for(window_end - system.sim.now)

    # Phase 3: heal; step until the covering invariant holds everywhere
    # and every reliable-channel frame is acknowledged.
    heal_time = system.sim.now
    deadline = heal_time + config.max_convergence
    converged_at = None
    while system.sim.now < deadline:
        system.run_for(0.5)
        if covering_violations(system.hierarchy, system.sim.now):
            continue
        if not all(n.uplink_idle for n in system.hierarchy.nodes()):
            continue
        if not all(s.control_idle for s in system.subscribers):
            continue
        converged_at = system.sim.now
        break
    result.convergence_time = (
        (converged_at - heal_time) if converged_at is not None
        else config.max_convergence
    )
    result.violations_after = len(
        covering_violations(system.hierarchy, system.sim.now)
    )

    # Phase 4: clean traffic again over the recovered overlay.
    post_uids = []
    for _ in range(config.events_per_phase):
        post_uids.append(publish_one())
        system.run_for(0.05)
    system.run_for(1.0)

    # Score against ground truth.
    total_delivered = sum(len(log) for log in deliveries.values())
    if total_delivered == 0:
        # An all-zero run would still "pass" ratio gates whose expected
        # count is zero (and used to render as zero latency); a chaos run
        # that delivers nothing is broken, not lucky — say so loudly.
        raise RuntimeError(
            "chaos run delivered zero events across all phases — the "
            "workload, subscriptions, or overlay wiring is broken "
            f"(published {len(events)} events to {len(specs)} subscriptions)"
        )
    counts: Dict[Tuple[str, int], int] = {}
    for name, log in deliveries.items():
        for uid in log:
            counts[(name, uid)] = counts.get((name, uid), 0) + 1

    def score(uid_list) -> Tuple[float, int]:
        expected = delivered = 0
        max_copies = 0
        for uid in uid_list:
            symbol, price = events[uid]
            for spec in specs:
                if not spec.matches(symbol, price):
                    continue
                expected += 1
                copies = counts.get((spec.subscriber, uid), 0)
                if copies:
                    delivered += 1
                if copies > max_copies:
                    max_copies = copies
        ratio = delivered / expected if expected else 1.0
        return ratio, max_copies

    result.pre_ratio, result.pre_max_copies = score(pre_uids)
    result.during_ratio, _ = score(during_uids)
    result.post_ratio, result.post_max_copies = score(post_uids)

    all_counters = [n.counters for n in system.hierarchy.nodes()] + [
        s.counters for s in system.subscribers
    ]
    result.control_retransmits = sum(c.control_retransmits for c in all_counters)
    result.control_dups_discarded = sum(
        c.control_dups_discarded for c in all_counters
    )
    stats = system.network.stats
    result.dropped_messages = stats.dropped_messages
    result.dropped_bytes = stats.dropped_bytes
    result.duplicated_messages = stats.duplicated_messages
    system.stop_maintenance()
    system.stop_sampling()
    return result


def render(result: ChaosResult) -> str:
    config = result.config
    rows = [
        ["delivery ratio (pre-fault)", result.pre_ratio],
        ["delivery ratio (during faults)", result.during_ratio],
        ["delivery ratio (post-heal)", result.post_ratio],
        ["max copies per delivery (pre)", result.pre_max_copies],
        ["max copies per delivery (post)", result.post_max_copies],
        ["convergence time after heal (s)", result.convergence_time],
        ["covering violations remaining", result.violations_after],
        ["control retransmits", result.control_retransmits],
        ["duplicate frames discarded", result.control_dups_discarded],
    ]
    title = (
        f"Chaos run: loss={config.loss} dup={config.duplicate} "
        f"jitter={config.jitter}s, crash stage {config.crash_stage} "
        f"for {config.crash_duration}s (seed {config.seed})"
    )
    parts = [title, render_table(["Metric", "Value"], rows)]
    parts.append(render_network_summary(result.system.network.stats))
    named = [
        (n.name, n.counters)
        for n in result.system.hierarchy.nodes()
        if n.counters.control_retransmits or n.counters.control_dups_discarded
    ]
    if named:
        parts.append(render_reliability_summary(named))
    if result.tracer.enabled:
        parts.append(render_observability(result))
    return "\n\n".join(parts)


def render_observability(result: ChaosResult) -> str:
    """The trace-derived sections of the chaos report: fault alignment,
    hop-latency histograms, hottest brokers, the sampled stage series,
    and one fully reconstructed event path."""
    tracer = result.tracer
    parts = []
    windows = [
        (result.fault_window[0], result.fault_window[1], "link faults"),
        (result.crash_window[0], result.crash_window[1], "broker crash"),
    ]
    parts.append(render_fault_alignment(tracer, windows))
    parts.append(render_stage_latency_histograms(tracer))
    parts.append(render_hottest_brokers(tracer))
    sampler = result.sampler
    if sampler is not None:
        for metric in ("events_per_s", "queue_depth", "retransmits_per_s"):
            parts.append(
                render_series(
                    f"Stage series: {metric}", sampler.stage_series(metric)
                )
            )
    # One reconstructed path, picked deterministically: the first event
    # with a complete delivered path.
    for event_id in tracer.event_ids():
        paths = tracer.reconstruct(event_id)
        if any(p.complete and p.delivered for p in paths):
            parts.append(
                "Reconstructed event path\n" + render_trace_path(tracer, event_id)
            )
            break
    return "\n\n".join(parts)


def run(config: Optional[ChaosConfig] = None) -> ChaosResult:
    result = run_chaos(config)
    print(render(result))
    print(
        f"\nexactly-once outside faults: {result.exactly_once}; "
        f"converged: {result.converged}"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
