"""Scenario runner for the paper's simulation setup (Section 5.2).

The paper's configuration: a four-level system — 1 node at level 3, 10
at level 2, 100 at level 1, and user-level subscribers below — running
the bibliographic workload, with pseudo-random events injected at the
root.  :func:`run_bibliographic` reproduces that pipeline end to end and
returns a :class:`ScenarioResult` from which the RLC table, the Figure-7
series, and the ablation metrics are all derived.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.engine import MultiStageEventSystem
from repro.metrics.counters import NodeCounters
from repro.metrics.load import mean, relative_load_complexity
from repro.metrics.matching import average_matching_rate, matching_rate
from repro.sim.rng import RngRegistry
from repro.workloads.bibliographic import BIB_EVENT_CLASS, BibliographicWorkload


@dataclass
class ScenarioConfig:
    """Knobs of one bibliographic simulation run.

    Defaults give a fast, CI-sized run; the benchmarks scale
    ``stage_sizes``/``n_subscribers``/``n_events`` up to the paper's
    configuration (100/10/1 nodes, O(1000) subscriptions).
    """

    stage_sizes: Tuple[int, ...] = (20, 5, 1)
    n_subscribers: int = 200
    n_events: int = 200
    seed: int = 0
    engine: str = "index"
    ttl: float = 60.0
    wildcard_rate: float = 0.0
    #: Which attribute (and everything less general) wildcard subscriptions
    #: blank out; "author" exercises HANDLE-WILDCARD-SUBS (a title-only
    #: wildcard already targets stage 1, the normal attachment point).
    wildcard_attribute: str = "author"
    #: "similarity" follows Figure 5; "random" joins a random stage-1 node.
    placement: str = "similarity"
    wildcard_routing: bool = True
    #: Compact broker tables with covering merges (§4 g1-collapse).
    compact: bool = False
    #: Routing-decision cache on broker match engines (hot-path memo).
    cache: bool = True
    #: Batched dispatch: nodes drain runs of publishes per wakeup.
    batch: bool = True
    #: Covering-based subscription aggregation on the broker uplinks
    #: (suppress propagation of covered filters; §4, Prop. 1).
    aggregate: bool = True
    # Workload domain sizes (unpublished in the paper; see EXPERIMENTS.md).
    n_years: int = 12
    n_conferences: int = 30
    n_authors: int = 800
    n_records: int = 1500
    author_exponent: float = 0.9
    record_exponent: float = 0.9
    sibling_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.placement not in ("similarity", "random"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.n_subscribers < 1 or self.n_events < 1:
            raise ValueError("need at least one subscriber and one event")


@dataclass
class ScenarioResult:
    """Everything measured from one run, with metric helpers."""

    config: ScenarioConfig
    system: MultiStageEventSystem
    workload: BibliographicWorkload
    total_events: int
    total_subscriptions: int
    #: {stage: [(process name, counters)]}; stage 0 is the subscribers.
    counters_by_stage: Dict[int, List[Tuple[str, NodeCounters]]] = field(
        default_factory=dict
    )
    #: Per-subscriber delivery trace: {subscriber name: [titles in the
    #: order delivered]}.  Per-subscriber order is deterministic and, by
    #: the covering argument, invariant under the aggregation ablation.
    deliveries: Dict[str, List[str]] = field(default_factory=dict)

    def stages(self) -> List[int]:
        return sorted(self.counters_by_stage)

    def rlc_values(self, stage: int) -> List[float]:
        """Per-node RLC at one stage (§5.1)."""
        return [
            relative_load_complexity(
                counters, self.total_events, self.total_subscriptions
            )
            for _, counters in self.counters_by_stage[stage]
        ]

    def rlc_node_average(self, stage: int) -> float:
        """The table's "Node avg. of RLC" column."""
        return mean(self.rlc_values(stage))

    def rlc_stage_total(self, stage: int) -> float:
        """The table's "Total node avg. of RLC" column (avg x node count)."""
        return sum(self.rlc_values(stage))

    def rlc_global_total(self) -> float:
        """Sum over all stages — the paper observes this lands around 1."""
        return sum(self.rlc_stage_total(stage) for stage in self.stages())

    def mr_values(self, stage: int) -> List[float]:
        """Per-node matching rate at one stage (the Figure-7 series)."""
        return [
            matching_rate(counters)
            for _, counters in self.counters_by_stage[stage]
            if counters.events_received > 0
        ]

    def subscriber_average_mr(self) -> float:
        """The paper's headline 0.87: average MR of stage-0 processes."""
        return average_matching_rate(
            [counters for _, counters in self.counters_by_stage[0]]
        )

    def stage1_event_loads(self) -> List[int]:
        """Events received per stage-1 node (wildcard ablation metric)."""
        return [c.events_received for _, c in self.counters_by_stage[1]]

    def filters_per_stage(self) -> Dict[int, int]:
        """Total distinct filters held per broker stage."""
        return {
            stage: sum(c.filters_held for _, c in self.counters_by_stage[stage])
            for stage in self.stages()
            if stage >= 1
        }

    def cache_totals(self) -> Dict[str, float]:
        """System-wide routing-cache and batch counters (broker stages)."""
        from repro.metrics.report import aggregate_cache_counters

        return aggregate_cache_counters(
            counters
            for stage in self.stages()
            if stage >= 1
            for _, counters in self.counters_by_stage[stage]
        )

    def aggregation_totals(self) -> Dict[str, float]:
        """System-wide covering-aggregation counters (broker stages)."""
        from repro.metrics.report import aggregate_aggregation_counters

        return aggregate_aggregation_counters(
            counters
            for stage in self.stages()
            if stage >= 1
            for _, counters in self.counters_by_stage[stage]
        )


def run_bibliographic(config: Optional[ScenarioConfig] = None) -> ScenarioResult:
    """Run the §5.2 simulation pipeline and collect all counters."""
    config = config or ScenarioConfig()
    rngs = RngRegistry(config.seed)
    system = MultiStageEventSystem(
        stage_sizes=config.stage_sizes,
        ttl=config.ttl,
        seed=config.seed,
        engine=config.engine,
        wildcard_routing=config.wildcard_routing,
        compact=config.compact,
        cache=config.cache,
        batch=config.batch,
        aggregate=config.aggregate,
    )
    workload = BibliographicWorkload(
        rngs.stream("workload/records"),
        n_years=config.n_years,
        n_conferences=config.n_conferences,
        n_authors=config.n_authors,
        n_records=config.n_records,
        author_exponent=config.author_exponent,
        record_exponent=config.record_exponent,
        sibling_rate=config.sibling_rate,
    )
    stages = system.hierarchy.top_stage + 1
    system.advertise(
        BIB_EVENT_CLASS,
        schema=workload.schema,
        association=workload.association(stages),
    )
    system.drain()

    subscription_rng = rngs.stream("workload/subscriptions")
    placement_rng = rngs.stream("placement")
    stage1_nodes = system.hierarchy.stage1_nodes()
    deliveries: Dict[str, List[str]] = {}

    def recorder(name: str):
        log = deliveries.setdefault(name, [])

        def handler(event, metadata, subscription):
            log.append(getattr(metadata, "properties", metadata)["title"])

        return handler

    for index in range(config.n_subscribers):
        subscriber = system.create_subscriber(f"sub-{index}")
        filter_ = workload.sample_subscription(
            subscription_rng,
            wildcard_rate=config.wildcard_rate,
            wildcard_attribute=config.wildcard_attribute,
        )
        at_node = None
        if config.placement == "random":
            at_node = placement_rng.choice(stage1_nodes)
        system.subscribe(
            subscriber,
            filter_,
            event_class=BIB_EVENT_CLASS,
            handler=recorder(subscriber.name),
            at_node=at_node,
        )
        # Sequential joins: each subscription sees the filters installed by
        # the previous ones, which is what lets similarity placement work.
        system.drain()

    publisher = system.create_publisher("bib-feed")
    event_rng = rngs.stream("workload/events")
    for _ in range(config.n_events):
        publisher.publish(workload.sample_record(event_rng))
    system.drain()

    return ScenarioResult(
        config=config,
        system=system,
        workload=workload,
        total_events=publisher.events_published,
        total_subscriptions=system.total_subscriptions(),
        counters_by_stage=system.counters_by_stage(),
        deliveries=deliveries,
    )
