"""Experiment harness: one runner per table/figure of the paper.

- :mod:`~repro.experiments.common` — scenario configuration and the
  bibliographic simulation runner (§5.2 setup);
- :mod:`~repro.experiments.rlc_table` — the §5.3 RLC table;
- :mod:`~repro.experiments.figure7` — Figure 7 (matching rate per node);
- :mod:`~repro.experiments.comparison` — multi-stage vs centralized vs
  broadcast vs topic-based (§2.1 / §5.1 claims);
- :mod:`~repro.experiments.ablations` — placement, wildcard routing,
  hierarchy-depth and compaction ablations (§3.2, §4.2, §4.4);
- :mod:`~repro.experiments.scalability` — per-node load vs subscriber
  count (the §5.3 delegation claim);
- :mod:`~repro.experiments.multiclass` — Stock+Auction mixed workload
  (quantifying §3.4's topic-based degeneration);
- :mod:`~repro.experiments.chaos` — fault injection: delivery and
  convergence under lossy links and a broker crash/restart (§4.3);
- :mod:`~repro.experiments.flows` — in-broker information flows: the
  telemetry rollup vs a flow-free twin, and the subtree-crash scenario
  (DESIGN §15).
"""

from repro.experiments.common import ScenarioConfig, ScenarioResult, run_bibliographic

__all__ = ["ScenarioConfig", "ScenarioResult", "run_bibliographic"]
