"""Information-flow sweep: telemetry rollups vs a flow-free twin.

The bandwidth trade of DESIGN §15, measured end to end.  Every run
publishes the same high-fan-in sensor stream (``sensors_per_region``
sensors per region, one reading each per window) through the same
hierarchy, with a stage-2 broker crash/restart mid-stream:

- the **flow run** hosts the per-region tumbling-average rollup flow at
  the root; dashboards subscribe to the derived
  ``TelemetryRollup`` events (one per region per window);
- the **twin run** installs no flows; its dashboards subscribe to the
  raw per-region feeds and do the averaging client-side.

Both runs carry identical **raw-path witnesses** (single-sensor
subscriptions nowhere near a flow) whose delivered value sequences must
be identical — installing a flow must not perturb the raw path.  The
comparison gates (``bench_flows.py``): dashboard delivered events *and*
downlink bytes shrink ≥5× at 10× fan-in, witnesses byte-identical,
exactly-once audit CLEAN on three seeds.

A second scenario (:func:`run_subtree_crash`) hosts the flow on a
stage-2 broker and crashes *it*: open windows are discarded with
``window-dropped`` spans, the registrar's renewals re-install the flow
(refresh-or-restore), and the audit stays CLEAN with the recorded
excusal rule — a derived-event gap is excused iff its input window was
explicitly dropped by a crash (``dropped_window_excusals``) or it falls
in the crash window itself.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.engine import MultiStageEventSystem
from repro.flow import FlowConfig
from repro.log import (
    AuditReport,
    AuditSubscription,
    LogConfig,
    dropped_window_excusals,
    verify_exactly_once,
)
from repro.metrics.report import render_stream_summary, render_table
from repro.workloads.telemetry import (
    TELEMETRY_EVENT_CLASS,
    TELEMETRY_SCHEMA,
    TelemetryWorkload,
)


@dataclass
class FlowsConfig:
    """Knobs of one telemetry run (defaults are CI-sized, 10x fan-in)."""

    stage_sizes: Tuple[int, ...] = (4, 2, 1)
    seed: int = 7
    ttl: float = 30.0
    n_regions: int = 3
    #: Raw events per region per window — the fan-in factor the rollup
    #: collapses to one derived event.
    sensors_per_region: int = 10
    #: Tumbling-window span (simulated seconds) and windows published.
    window: float = 1.0
    n_windows: int = 8
    link_window: int = 32
    #: Crash a stage-2 broker (over the witness subtree) this long after
    #: publishing starts, for this long (0 duration = no crash).
    crash_after: float = 2.5
    crash_duration: float = 0.8
    #: Settle time after the last window (recovery, late deliveries).
    slack: float = 6.0
    #: Subtree-crash scenario: registrar renewal TTL (small, so the
    #: flow re-installs quickly after the hosting broker restarts).
    reinstall_ttl: float = 2.0


@dataclass
class FlowsOutcome:
    """Measurements from one run (flow-backed or flow-free twin)."""

    config: FlowsConfig
    flows_on: bool
    raw_published: int = 0
    #: Dashboard-side (downlink) totals, summed over all dashboards.
    dashboard_delivered: int = 0
    dashboard_bytes: int = 0
    #: Raw-path witness deliveries: name -> ordered (sensor, reading).
    witness_values: Dict[str, List[Tuple[str, float]]] = field(
        default_factory=dict
    )
    derived_published: int = 0
    flow_events_in: int = 0
    audit: Optional[AuditReport] = None
    crash_window: Tuple[float, float] = (0.0, 0.0)
    trace_dump: bytes = b""
    stream_report: str = ""

    @property
    def clean(self) -> bool:
        return self.audit is not None and self.audit.clean


@dataclass
class FlowsComparison:
    """Flow run vs flow-free twin over the same seeded stream."""

    flow: FlowsOutcome
    twin: FlowsOutcome

    @property
    def event_reduction(self) -> float:
        if not self.flow.dashboard_delivered:
            return 0.0
        return self.twin.dashboard_delivered / self.flow.dashboard_delivered

    @property
    def byte_reduction(self) -> float:
        if not self.flow.dashboard_bytes:
            return 0.0
        return self.twin.dashboard_bytes / self.flow.dashboard_bytes

    @property
    def witnesses_identical(self) -> bool:
        return self.flow.witness_values == self.twin.witness_values


def run_flows(
    config: Optional[FlowsConfig] = None, flows_on: bool = True
) -> FlowsOutcome:
    """One seeded telemetry run; ``flows_on`` picks flow vs twin."""
    config = config or FlowsConfig()
    system = MultiStageEventSystem(
        stage_sizes=config.stage_sizes,
        seed=config.seed,
        ttl=config.ttl,
        tracing=True,
        flow=FlowConfig(link_window=config.link_window),
        log=LogConfig(),
    )
    workload = TelemetryWorkload(
        system.rngs.stream("telemetry"),
        n_regions=config.n_regions,
        sensors_per_region=config.sensors_per_region,
    )
    system.advertise(TELEMETRY_EVENT_CLASS, schema=TELEMETRY_SCHEMA)
    if flows_on:
        system.install_flows([workload.rollup_flow(window=config.window)])
    system.drain()

    outcome = FlowsOutcome(config=config, flows_on=flows_on)
    publisher = system.create_publisher("telemetry-feed")
    audited: List[AuditSubscription] = []
    stage1 = system.hierarchy.stage1_nodes()

    # Dashboards (one per region) live in the *last* stage-1 subtree,
    # away from the crash; they want per-region aggregates — derived
    # rollups in the flow run, the full raw feed in the twin.
    dashboards = []
    for region in workload.regions:
        dashboard = system.create_subscriber(f"dashboard-{region}")
        filter_ = (
            workload.rollup_subscription(region)
            if flows_on
            else workload.raw_subscription(region)
        )
        subscription = system.subscribe(
            dashboard, filter_, handler=lambda e, m, s: None, at_node=stage1[-1]
        )[0]
        system.drain()
        dashboards.append(dashboard)
        audited.append(AuditSubscription(dashboard.name, subscription.filter))

    # Raw-path witnesses: two single-sensor feeds homed in the crash
    # subtree.  Identical in both runs — the byte-identity check.
    for index in range(2):
        name = f"witness-{index}"
        values = outcome.witness_values.setdefault(name, [])
        witness = system.create_subscriber(name)
        subscription = system.subscribe(
            witness,
            workload.sensor_subscription(workload.regions[0], index),
            handler=lambda e, m, s, values=values: values.append(
                (m["sensor"], m["reading"])
            ),
            at_node=stage1[0],
        )[0]
        system.drain()
        audited.append(AuditSubscription(witness.name, subscription.filter))

    # Publish n_windows rounds of readings, one reading per sensor per
    # window, evenly spread; crash/heal a stage-2 broker mid-stream.
    victim = stage1[0].parent
    start = system.sim.now
    crash_at = start + config.crash_after
    heal_at = crash_at + config.crash_duration
    if config.crash_duration:
        system.sim.schedule_at(crash_at, victim.crash)
        system.sim.schedule_at(heal_at, victim.restart)
        # Extended back one window: a rollup emitted just before the
        # crash may legitimately die in wiped downstream queues.
        outcome.crash_window = (crash_at - config.window, heal_at + config.slack)
    total_sensors = config.n_regions * config.sensors_per_region
    step = config.window / total_sensors
    for _ in range(config.n_windows):
        for reading in workload.readings_round():
            publisher.publish(reading, event_class=TELEMETRY_EVENT_CLASS)
            outcome.raw_published += 1
            system.run_for(step)
    system.run_for(config.slack)

    outcome.dashboard_delivered = sum(
        d.counters.events_delivered for d in dashboards
    )
    outcome.dashboard_bytes = sum(d.counters.bytes_received for d in dashboards)
    nodes = system.hierarchy.nodes()
    outcome.derived_published = sum(n.counters.events_published for n in nodes)
    outcome.flow_events_in = sum(n.counters.flow_events_in for n in nodes)
    windows = [outcome.crash_window] if config.crash_duration else []
    windows += list(dropped_window_excusals(system.tracer, slack=config.slack))
    outcome.audit = verify_exactly_once(
        system.root.log, system.tracer, audited, fault_windows=windows
    )
    outcome.trace_dump = system.tracer.dump()
    outcome.stream_report = render_stream_summary(
        [(n.name, n.counters) for n in nodes]
    )
    return outcome


def run_comparison(config: Optional[FlowsConfig] = None) -> FlowsComparison:
    config = config or FlowsConfig()
    return FlowsComparison(
        flow=run_flows(config, flows_on=True),
        twin=run_flows(config, flows_on=False),
    )


@dataclass
class SubtreeCrashOutcome:
    """Soft-state crash semantics of a flow hosted on a stage-2 broker."""

    config: FlowsConfig
    windows_dropped: int = 0
    reinstalled: bool = False
    derived_published: int = 0
    audit: Optional[AuditReport] = None
    excusals: Tuple[Tuple[float, float], ...] = ()

    @property
    def clean(self) -> bool:
        return self.audit is not None and self.audit.clean


def run_subtree_crash(
    config: Optional[FlowsConfig] = None,
) -> SubtreeCrashOutcome:
    """Host the rollup flow on a stage-2 broker and crash it mid-run.

    Open windows must be discarded with ``window-dropped`` spans, the
    registrar's renewals must re-install the flow after the restart,
    and the audit against the *hosting broker's* log must be CLEAN with
    the crash window plus the dropped-window excusal intervals.
    """
    config = config or FlowsConfig()
    outcome = SubtreeCrashOutcome(config=config)
    system = MultiStageEventSystem(
        stage_sizes=config.stage_sizes,
        seed=config.seed,
        ttl=config.ttl,
        tracing=True,
        flow=FlowConfig(link_window=config.link_window),
        log=LogConfig(),
    )
    workload = TelemetryWorkload(
        system.rngs.stream("telemetry"),
        n_regions=config.n_regions,
        sensors_per_region=config.sensors_per_region,
    )
    system.advertise(TELEMETRY_EVENT_CLASS, schema=TELEMETRY_SCHEMA)
    stage1 = system.hierarchy.stage1_nodes()
    victim = stage1[0].parent
    registrar = system.install_flows(
        [workload.rollup_flow(window=config.window, broker=victim.name)]
    )
    system.drain()
    # Fast lease renewal: the re-install path after the crash.
    registrar.ttl = config.reinstall_ttl
    registrar.start_maintenance()

    publisher = system.create_publisher("telemetry-feed")
    # Flows tap events *transiting* their broker: an archiver with a
    # class-only subscription in the victim's subtree pulls the full raw
    # stream through the hosting broker (and its log).
    archiver = system.create_subscriber("telemetry-archive")
    archive_sub = system.subscribe(
        archiver,
        workload.archive_subscription(),
        handler=lambda e, m, s: None,
        at_node=stage1[0],
    )[0]
    region = workload.regions[0]
    dashboard = system.create_subscriber(f"dashboard-{region}")
    subscription = system.subscribe(
        dashboard,
        workload.rollup_subscription(region),
        handler=lambda e, m, s: None,
        at_node=stage1[0],
    )[0]
    system.run_for(0.5)

    start = system.sim.now
    # Snap the crash to mid-window so it deterministically catches open
    # window state (a boundary-aligned crash finds nothing pending).
    crash_at = (
        math.floor((start + config.crash_after) / config.window) + 0.5
    ) * config.window
    heal_at = crash_at + config.crash_duration
    system.sim.schedule_at(crash_at, victim.crash)
    system.sim.schedule_at(heal_at, victim.restart)
    total_sensors = config.n_regions * config.sensors_per_region
    step = config.window / total_sensors
    for _ in range(config.n_windows):
        for reading in workload.readings_round():
            publisher.publish(reading, event_class=TELEMETRY_EVENT_CLASS)
            system.run_for(step)
    system.run_for(config.slack)

    outcome.windows_dropped = victim.counters.flow_windows_dropped
    outcome.reinstalled = "region-rollup" in victim.flows()
    outcome.derived_published = victim.counters.events_published
    outcome.excusals = dropped_window_excusals(system.tracer, slack=config.slack)
    windows = [(crash_at - config.window, heal_at + config.slack)]
    windows += list(outcome.excusals)
    outcome.audit = verify_exactly_once(
        victim.log,
        system.tracer,
        [
            AuditSubscription(dashboard.name, subscription.filter),
            AuditSubscription(archiver.name, archive_sub.filter),
        ],
        fault_windows=windows,
    )
    return outcome


def render(
    comparison: FlowsComparison, subtree: Optional[SubtreeCrashOutcome] = None
) -> str:
    config = comparison.flow.config
    title = (
        f"Telemetry rollup flow vs flow-free twin: "
        f"{config.n_regions} regions x {config.sensors_per_region} sensors, "
        f"{config.n_windows} windows of {config.window}s, "
        f"crash {config.crash_duration}s (seed {config.seed})"
    )
    rows = []
    for outcome in (comparison.flow, comparison.twin):
        rows.append(
            [
                "rollup flow" if outcome.flows_on else "flow-free twin",
                outcome.raw_published,
                outcome.derived_published,
                outcome.dashboard_delivered,
                outcome.dashboard_bytes,
                "CLEAN" if outcome.clean else "DIRTY",
            ]
        )
    table = render_table(
        [
            "Run",
            "raw published",
            "derived",
            "dashboard events",
            "dashboard bytes",
            "audit",
        ],
        rows,
    )
    summary = render_table(
        ["Metric", "Value"],
        [
            ["delivered-event reduction", f"{comparison.event_reduction:.1f}x"],
            ["downlink-byte reduction", f"{comparison.byte_reduction:.1f}x"],
            [
                "raw witnesses identical",
                "yes" if comparison.witnesses_identical else "NO",
            ],
        ],
    )
    parts = [title, table, summary, comparison.flow.stream_report]
    if subtree is not None:
        parts.append(
            render_table(
                ["Subtree crash (flow on stage-2 broker)", "Value"],
                [
                    ["windows dropped by crash", subtree.windows_dropped],
                    [
                        "flow re-installed after restart",
                        "yes" if subtree.reinstalled else "NO",
                    ],
                    ["derived events published", subtree.derived_published],
                    ["excusal intervals", len(subtree.excusals)],
                    ["audit", "CLEAN" if subtree.clean else "DIRTY"],
                ],
            )
        )
        parts.append(subtree.audit.render())
    parts.append(comparison.flow.audit.render())
    return "\n\n".join(parts)


def run(config: Optional[FlowsConfig] = None) -> FlowsComparison:
    comparison = run_comparison(config)
    subtree = run_subtree_crash(config)
    print(render(comparison, subtree))
    clean = comparison.flow.clean and comparison.twin.clean and subtree.clean
    print(
        f"\nevent reduction: {comparison.event_reduction:.1f}x; "
        f"byte reduction: {comparison.byte_reduction:.1f}x; "
        f"witnesses identical: {comparison.witnesses_identical}; "
        f"audits clean: {clean}"
    )
    return comparison


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
