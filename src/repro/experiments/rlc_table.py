"""The RLC table of Section 5.3.

The paper reports, for a 1/10/100-node hierarchy running the
bibliographic workload::

    Stage  Node avg. of RLC   Total node avg. of RLC
    0      2e-7               2e-4
    1      2e-4               2e-1
    2      0.1                1
    3      0.02               0.02

with the global total "around 1", against a centralized server whose RLC
is exactly 1.  This module regenerates those rows from a scenario run.
Absolute values depend on unpublished workload constants; the reproduced
*shape* is: every node's RLC is orders of magnitude below 1, per-stage
node averages rise toward the middle of the tree and drop again at the
root, and the global total stays at or below the centralized total of 1.
"""

from typing import Dict, List, Optional, Tuple

from repro.experiments.common import ScenarioConfig, ScenarioResult, run_bibliographic
from repro.metrics.report import render_table

#: The paper's reported values, keyed by stage (node average, stage total).
PAPER_RLC_TABLE: Dict[int, Tuple[float, float]] = {
    0: (2e-7, 2e-4),
    1: (2e-4, 2e-1),
    2: (0.1, 1.0),
    3: (0.02, 0.02),
}

#: Configuration mirroring the paper's §5.2 simulation scale.  The
#: workload constants are calibrated (see EXPERIMENTS.md): the paper's
#: own table is consistent with *random* subscriber placement (its
#: stage-2 nodes receive nearly every event), so the headline
#: reproduction uses it; the §4.2 similarity placement — measured in the
#: placement ablation — only improves on these numbers.
PAPER_SCALE = ScenarioConfig(
    stage_sizes=(100, 10, 1),
    n_subscribers=1000,
    n_events=1000,
    placement="random",
    n_years=30,
    n_conferences=100,
    n_authors=500,
    n_records=3000,
    author_exponent=1.1,
    record_exponent=0.9,
    sibling_rate=0.06,
)


def rlc_rows(result: ScenarioResult) -> List[Tuple[int, float, float]]:
    """``(stage, node average RLC, stage total RLC)`` rows, stage 0 first."""
    return [
        (stage, result.rlc_node_average(stage), result.rlc_stage_total(stage))
        for stage in result.stages()
    ]


def render(result: ScenarioResult) -> str:
    """The table, with the paper's reference values alongside."""
    rows = []
    for stage, node_avg, total in rlc_rows(result):
        paper_avg, paper_total = PAPER_RLC_TABLE.get(stage, ("-", "-"))
        rows.append([stage, node_avg, paper_avg, total, paper_total])
    rows.append(
        ["all", "", "", result.rlc_global_total(), sum(v[1] for v in PAPER_RLC_TABLE.values())]
    )
    return render_table(
        [
            "Stage",
            "Node avg. RLC",
            "(paper)",
            "Total node avg. RLC",
            "(paper)",
        ],
        rows,
    )


def run(config: Optional[ScenarioConfig] = None) -> ScenarioResult:
    """Run the scenario and print the §5.3 table."""
    result = run_bibliographic(config or PAPER_SCALE)
    print(render(result))
    print(
        f"\ncentralized reference RLC = 1; "
        f"global multi-stage total = {result.rlc_global_total():.4g}"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
