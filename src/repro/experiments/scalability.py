"""Scalability sweep: per-node load as subscribers multiply.

The paper's §5.3 claim: "due to the delegation of work among
intermediate nodes, the addition of more subscribers does not overload
the existing nodes", and "by adding a few number of intermediate nodes,
the number of subscribers can be increased significantly without
increasing the required computational power at any node".

This experiment sweeps the subscription count on a fixed hierarchy and
reports the *absolute* Load Complexity (events x filters — RLC would be
trivially normalized by the subscription count) of the busiest node per
stage, against the centralized server whose LC grows linearly by
definition.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ScenarioConfig, run_bibliographic
from repro.metrics.load import load_complexity
from repro.metrics.report import render_table


@dataclass
class ScalabilityPoint:
    """Per-node peak loads at one subscription count."""

    n_subscribers: int
    #: Max LC over nodes, per stage.
    max_lc_by_stage: Dict[int, float]
    #: The centralized comparator: every event against every subscription.
    centralized_lc: float
    subscriber_mr: float
    #: System-wide routing-cache hit rate over the broker stages.
    cache_hit_rate: float = 0.0
    #: Distinct filters held per broker stage (covering aggregation
    #: keeps the upper stages maximal-only).
    filters_by_stage: Dict[int, int] = field(default_factory=dict)
    #: Total ``req-Insert`` control messages sent across brokers.
    req_inserts: int = 0
    #: Upward propagations suppressed by covering aggregation.
    suppressed: int = 0

    def max_broker_lc(self) -> float:
        return max(
            lc for stage, lc in self.max_lc_by_stage.items() if stage >= 1
        )


def run_scalability(
    base: Optional[ScenarioConfig] = None,
    subscriber_counts: Sequence[int] = (125, 250, 500, 1000),
) -> List[ScalabilityPoint]:
    """Sweep subscriber counts on an otherwise fixed scenario."""
    base = base or ScenarioConfig()
    points: List[ScalabilityPoint] = []
    for count in subscriber_counts:
        config = ScenarioConfig(**{**base.__dict__, "n_subscribers": count})
        result = run_bibliographic(config)
        max_lc = {}
        for stage in result.stages():
            if stage < 1:
                continue
            max_lc[stage] = max(
                load_complexity(counters)
                for _, counters in result.counters_by_stage[stage]
            )
        aggregation = result.aggregation_totals()
        points.append(
            ScalabilityPoint(
                n_subscribers=count,
                max_lc_by_stage=max_lc,
                centralized_lc=float(result.total_events) * count,
                subscriber_mr=result.subscriber_average_mr(),
                cache_hit_rate=result.cache_totals()["hit_rate"],
                filters_by_stage=result.filters_per_stage(),
                req_inserts=aggregation["req_inserts_sent"],
                suppressed=aggregation["propagations_suppressed"],
            )
        )
    return points


def render(points: List[ScalabilityPoint]) -> str:
    stages = sorted(points[0].max_lc_by_stage) if points else []
    headers = (
        ["Subscribers"]
        + [f"Max LC stage {s}" for s in stages]
        + [
            "Centralized LC",
            "Subscriber MR",
            "Cache hit rate",
        ]
        + [f"Filters stage {s}" for s in stages]
        + ["ReqInsert", "Suppressed"]
    )
    rows = []
    for point in points:
        rows.append(
            [point.n_subscribers]
            + [point.max_lc_by_stage[s] for s in stages]
            + [point.centralized_lc, point.subscriber_mr, point.cache_hit_rate]
            + [point.filters_by_stage.get(s, 0) for s in stages]
            + [point.req_inserts, point.suppressed]
        )
    return render_table(headers, rows)


def growth_factor(points: List[ScalabilityPoint]) -> float:
    """Peak-broker-LC growth over the sweep, for the shape assertion."""
    if len(points) < 2:
        raise ValueError("need at least two sweep points")
    return points[-1].max_broker_lc() / max(1.0, points[0].max_broker_lc())


def run(base: Optional[ScenarioConfig] = None) -> List[ScalabilityPoint]:
    points = run_scalability(base)
    print(render(points))
    subscriber_growth = points[-1].n_subscribers / points[0].n_subscribers
    print(
        f"\nsubscribers grew {subscriber_growth:.0f}x; busiest broker LC grew "
        f"{growth_factor(points):.1f}x; centralized LC grew "
        f"{points[-1].centralized_lc / points[0].centralized_lc:.0f}x"
    )
    return points


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
