"""Architecture comparison: multi-stage vs the §2.1 alternatives.

The paper's quantitative claims, regenerated here on one identical
workload (same subscriptions, same event stream, same seed):

- a **centralized** server has RLC exactly 1 (it receives every event
  and holds every subscription) — §5.1;
- **broadcast** pushes the full event stream to every edge: subscriber
  received-event counts equal the publication count and edge MR is the
  raw workload selectivity — §2.1's "does not scale";
- **topic-based** only discriminates on the class, so for the
  single-class bibliographic workload it behaves like broadcast — the
  degenerate ``g3`` of §3.4;
- **multi-stage** keeps every broker's RLC orders of magnitude below 1
  while delivering *exactly the same events* to subscribers.

All four systems must produce identical delivery multisets — asserted by
the integration tests — which is the end-to-end soundness of
Propositions 1 and 2 in action.
"""

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.broadcast import BroadcastSystem
from repro.baselines.centralized import CentralizedSystem
from repro.baselines.topicbased import TopicBasedSystem
from repro.experiments.common import ScenarioConfig
from repro.core.engine import MultiStageEventSystem
from repro.metrics.latency import LatencySummary, combined
from repro.metrics.load import relative_load_complexity
from repro.metrics.matching import average_matching_rate
from repro.metrics.report import render_table
from repro.sim.rng import RngRegistry
from repro.workloads.bibliographic import BIB_EVENT_CLASS, BibliographicWorkload

ARCHITECTURES = ("multistage", "centralized", "broadcast", "topicbased")


@dataclass
class ArchitectureResult:
    """Measurements of one architecture on the shared workload."""

    architecture: str
    #: Maximum RLC over broker-side filtering locations (server, hub, or
    #: overlay nodes); the paper's scalability claim is about this number.
    max_broker_rlc: float
    #: Sum of broker-side RLCs (global work; ~1 for centralized).
    total_broker_rlc: float
    #: Average events received per subscriber.
    edge_avg_received: float
    #: Average subscriber matching rate.
    edge_avg_mr: float
    #: Total messages carried by the network (control + data).
    total_messages: int
    #: Publish-to-delivery latency over all subscribers.
    latency: LatencySummary
    #: Multiset of (subscriber, title) deliveries — must agree across
    #: architectures.
    deliveries: Counter


def _shared_workload(config: ScenarioConfig):
    rngs = RngRegistry(config.seed)
    workload = BibliographicWorkload(
        rngs.stream("workload/records"),
        n_years=config.n_years,
        n_conferences=config.n_conferences,
        n_authors=config.n_authors,
        n_records=config.n_records,
        author_exponent=config.author_exponent,
        record_exponent=config.record_exponent,
        sibling_rate=config.sibling_rate,
    )
    subscription_rng = rngs.stream("workload/subscriptions")
    filters = [
        workload.sample_subscription(
            subscription_rng,
            wildcard_rate=config.wildcard_rate,
            wildcard_attribute=config.wildcard_attribute,
        )
        for _ in range(config.n_subscribers)
    ]
    event_rng = rngs.stream("workload/events")
    records = [workload.sample_record(event_rng) for _ in range(config.n_events)]
    return workload, filters, records


def _delivery_handler(deliveries: Counter, name: str) -> Callable:
    def handler(event, metadata, subscription, _deliveries=deliveries, _name=name):
        _deliveries[(_name, metadata["title"])] += 1

    return handler


def _run_multistage(config: ScenarioConfig, workload, filters, records) -> ArchitectureResult:
    system = MultiStageEventSystem(
        stage_sizes=config.stage_sizes,
        seed=config.seed,
        engine=config.engine,
        ttl=config.ttl,
        wildcard_routing=config.wildcard_routing,
    )
    stages = system.hierarchy.top_stage + 1
    system.advertise(
        BIB_EVENT_CLASS, schema=workload.schema,
        association=workload.association(stages),
    )
    system.drain()
    deliveries: Counter = Counter()
    for index, filter_ in enumerate(filters):
        subscriber = system.create_subscriber(f"sub-{index}")
        system.subscribe(
            subscriber, filter_, event_class=BIB_EVENT_CLASS,
            handler=_delivery_handler(deliveries, subscriber.name),
        )
        system.drain()
    publisher = system.create_publisher("bib-feed")
    for record in records:
        publisher.publish(record)
    system.drain()

    total_events = publisher.events_published
    total_subs = system.total_subscriptions()
    broker_rlcs = [
        relative_load_complexity(node.counters, total_events, total_subs)
        for node in system.hierarchy.nodes()
    ]
    edge_counters = [s.counters for s in system.subscribers]
    latency = combined(s.delivery_latencies for s in system.subscribers)
    return ArchitectureResult(
        architecture="multistage",
        max_broker_rlc=max(broker_rlcs),
        total_broker_rlc=sum(broker_rlcs),
        edge_avg_received=sum(c.events_received for c in edge_counters)
        / max(1, len(edge_counters)),
        edge_avg_mr=average_matching_rate(edge_counters),
        total_messages=system.network.stats.total_messages,
        latency=latency,
        deliveries=deliveries,
    )


def _run_baseline(
    architecture: str, config: ScenarioConfig, workload, filters, records
) -> ArchitectureResult:
    if architecture == "centralized":
        system = CentralizedSystem(seed=config.seed, engine=config.engine)
        broker_counters = [system.server.counters]
    elif architecture == "broadcast":
        system = BroadcastSystem(seed=config.seed)
        broker_counters = [system.fabric.counters]
    elif architecture == "topicbased":
        system = TopicBasedSystem(seed=config.seed)
        broker_counters = [system.hub.counters]
    else:
        raise ValueError(f"unknown architecture {architecture!r}")

    system.advertise(workload.advertisement(len(config.stage_sizes) + 1))
    deliveries: Counter = Counter()
    for index, filter_ in enumerate(filters):
        subscriber = system.create_subscriber(f"sub-{index}")
        system.subscribe(
            subscriber, filter_, event_class=BIB_EVENT_CLASS,
            handler=_delivery_handler(deliveries, subscriber.name),
        )
    publisher = system.create_publisher("bib-feed")
    for record in records:
        publisher.publish(record)
    system.drain()

    total_events = system.total_events_published()
    total_subs = system.total_subscriptions()
    broker_rlcs = [
        relative_load_complexity(c, total_events, total_subs)
        for c in broker_counters
    ]
    edge_counters = [s.counters for s in system.subscribers]
    latency = combined(s.delivery_latencies for s in system.subscribers)
    return ArchitectureResult(
        architecture=architecture,
        max_broker_rlc=max(broker_rlcs),
        total_broker_rlc=sum(broker_rlcs),
        edge_avg_received=sum(c.events_received for c in edge_counters)
        / max(1, len(edge_counters)),
        edge_avg_mr=average_matching_rate(edge_counters),
        total_messages=system.network.stats.total_messages,
        latency=latency,
        deliveries=deliveries,
    )


def run_comparison(
    config: Optional[ScenarioConfig] = None,
    architectures: Tuple[str, ...] = ARCHITECTURES,
) -> Dict[str, ArchitectureResult]:
    """Run every requested architecture on the identical workload."""
    config = config or ScenarioConfig()
    workload, filters, records = _shared_workload(config)
    results: Dict[str, ArchitectureResult] = {}
    for architecture in architectures:
        if architecture == "multistage":
            results[architecture] = _run_multistage(config, workload, filters, records)
        else:
            results[architecture] = _run_baseline(
                architecture, config, workload, filters, records
            )
    return results


def render(results: Dict[str, ArchitectureResult]) -> str:
    rows: List[List] = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.max_broker_rlc,
                result.total_broker_rlc,
                result.edge_avg_received,
                result.edge_avg_mr,
                result.total_messages,
                (
                    result.latency.mean
                    if result.latency.count
                    else "n/a (no deliveries)"
                ),
            ]
        )
    return render_table(
        [
            "Architecture",
            "Max broker RLC",
            "Sum broker RLC",
            "Events/subscriber",
            "Edge MR",
            "Messages",
            "Mean latency",
        ],
        rows,
    )


def run(config: Optional[ScenarioConfig] = None) -> Dict[str, ArchitectureResult]:
    results = run_comparison(config)
    print(render(results))
    baseline = results.get("centralized")
    if baseline is not None:
        print(f"\ncentralized server RLC = {baseline.max_broker_rlc:.4g} (defined as 1)")
    return results


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
