"""Overload sweep: offered load vs. goodput, latency, and shed rate.

The other experiments drive infinitely fast brokers, so the system can
never be overloaded — every offered event is eventually processed.  This
sweep gives every broker a finite service rate and pushes an open-loop
publisher at multiples of the bottleneck capacity (the root sees every
published event, so saturation ≈ the configured ``service_rate``), once
*with* the flow-control subsystem (credits, bounded queues, shedding —
see :mod:`repro.flow`) and once *without* (finite-speed brokers with
unbounded queues: the classic congestion-collapse baseline).

Per point the sweep reports

- **accepted / offered** — publishes admitted past the publisher's
  credit window and local queue,
- **goodput** — deliveries that met the latency SLO, per second,
- **p50/max delivery latency** over all deliveries,
- **shed events** by location (publisher edge vs. broker queues) and
  **peak queued** — the memory the run actually committed, against the
  configured bound.

The headline: below saturation the two configurations are
indistinguishable and nothing is shed; past saturation the uncontrolled
run's queues (and latencies) grow without bound while the controlled run
sheds at the publisher edge, keeps total queued memory under the
configured cap, and holds goodput at the service capacity.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.engine import MultiStageEventSystem
from repro.flow import FlowConfig
from repro.metrics.report import (
    render_flow_summary,
    render_table,
)
from repro.sim.rng import RngRegistry

OVERLOAD_EVENT_CLASS = "Load"
SCHEMA = ("class", "symbol", "price")
SYMBOLS = tuple(f"SYM{i}" for i in range(8))


class Load:
    """Minimal event for the sweep; ``uid`` stays out of routing
    meta-data (no getter)."""

    def __init__(self, symbol: str, price: int, uid: int):
        self._symbol = symbol
        self._price = price
        self.uid = uid

    def get_symbol(self) -> str:
        return self._symbol

    def get_price(self) -> int:
        return self._price


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of one overload sweep (defaults are CI-sized)."""

    stage_sizes: Tuple[int, ...] = (4, 2, 1)
    n_subscribers: int = 16
    seed: int = 11
    #: Broker service capacity (events/s); the root sees every event, so
    #: this is the system's saturation point for offered load.
    service_rate: float = 300.0
    service_batch: int = 8
    #: Open-loop publishing window and post-publish drain tail (sim s).
    duration: float = 4.0
    tail: float = 2.0
    #: Delivery-latency SLO for goodput accounting (sim s).
    slo: float = 1.0
    #: Offered load as multiples of ``service_rate``.
    multipliers: Tuple[float, ...] = (0.5, 1.0, 2.0, 10.0)
    flow: FlowConfig = field(default_factory=FlowConfig)
    #: Queue-depth probe interval for the peak-memory measurement.
    probe_interval: float = 0.05


@dataclass
class OverloadPoint:
    """Measurements from one (multiplier, flow on/off) run."""

    multiplier: float
    controlled: bool
    offered: int = 0
    accepted: int = 0
    deliveries: int = 0
    good_deliveries: int = 0
    goodput: float = 0.0
    p50_latency: float = 0.0
    max_latency: float = 0.0
    shed_total: int = 0
    shed_publisher: int = 0
    shed_brokers: int = 0
    rate_limited: int = 0
    credit_stalls: int = 0
    overload_transitions: int = 0
    peak_queued: int = 0
    final_queued: int = 0
    system: MultiStageEventSystem = field(default=None, repr=False)


@dataclass
class OverloadResult:
    config: OverloadConfig
    #: ``{multiplier: point}`` for the flow-controlled runs.
    controlled: Dict[float, OverloadPoint] = field(default_factory=dict)
    #: ``{multiplier: point}`` for the unbounded-queue baseline.
    uncontrolled: Dict[float, OverloadPoint] = field(default_factory=dict)

    @property
    def capacity_budget(self) -> int:
        return queue_capacity_budget(self.config)


def queue_capacity_budget(config: OverloadConfig) -> int:
    """The hard memory bound a controlled run must respect: every bounded
    queue's capacity, summed — broker inbound queues, per-child outbound
    queues, and the publisher's credit-blocked local queue."""
    flow = config.flow
    budget = flow.publisher_queue_capacity  # one publisher
    sizes = list(config.stage_sizes)
    for index, size in enumerate(sizes):
        children = sizes[index - 1] if index > 0 else 0
        per_node_outbound = 0
        if children:
            # Children are distributed round-robin over this stage.
            per_node_outbound = -(-children // size) * flow.outbound_capacity
        budget += size * (flow.queue_capacity + per_node_outbound)
    return budget


def run_point(
    config: OverloadConfig,
    multiplier: float,
    controlled: bool,
    tracing: bool = False,
) -> OverloadPoint:
    """One open-loop run at ``multiplier`` × saturation."""
    system = MultiStageEventSystem(
        stage_sizes=config.stage_sizes,
        seed=config.seed,
        tracing=tracing,
        flow=config.flow if controlled else None,
        service_rate=config.service_rate,
        service_batch=config.service_batch,
    )
    point = OverloadPoint(
        multiplier=multiplier, controlled=controlled, system=system
    )
    system.advertise(OVERLOAD_EVENT_CLASS, schema=SCHEMA)
    system.drain()

    rngs = RngRegistry(config.seed)
    sub_rng = rngs.stream("overload/subscriptions")
    publish_times: Dict[int, float] = {}
    latencies: List[float] = []

    def handler(event, metadata, subscription):
        latencies.append(system.sim.now - publish_times[event.uid])

    for index in range(config.n_subscribers):
        subscriber = system.create_subscriber(f"load-sub-{index}")
        symbol = SYMBOLS[index % len(SYMBOLS)]
        bound = sub_rng.randrange(6, 12)
        system.subscribe(
            subscriber,
            f'class = "{OVERLOAD_EVENT_CLASS}" and symbol = "{symbol}" '
            f"and price < {bound}",
            event_class=OVERLOAD_EVENT_CLASS,
            handler=handler,
        )
        system.drain()

    publisher = system.create_publisher("load-feed")
    event_rng = rngs.stream("overload/events")
    offered_rate = config.service_rate * multiplier
    uids = iter(range(10_000_000))

    def publish_one() -> None:
        uid = next(uids)
        point.offered += 1
        publish_times[uid] = system.sim.now
        symbol = event_rng.choice(SYMBOLS)
        price = event_rng.randrange(0, 12)
        if publisher.publish(
            Load(symbol, price, uid), event_class=OVERLOAD_EVENT_CLASS
        ):
            point.accepted += 1

    def probe() -> None:
        depth = system.total_queue_depth()
        if depth > point.peak_queued:
            point.peak_queued = depth

    system.start_sampling(interval=0.25)  # feeds the overload detectors
    feed = system.sim.every(1.0 / offered_rate, publish_one)
    probe_handle = system.sim.every(config.probe_interval, probe)
    system.run_for(config.duration)
    feed.cancel()
    system.run_for(config.tail)
    probe_handle.cancel()
    system.stop_sampling()

    point.final_queued = system.total_queue_depth()
    point.deliveries = len(latencies)
    point.good_deliveries = sum(1 for lat in latencies if lat <= config.slo)
    point.goodput = point.good_deliveries / config.duration
    if latencies:
        ordered = sorted(latencies)
        point.p50_latency = ordered[len(ordered) // 2]
        point.max_latency = ordered[-1]
    point.shed_total = system.total_events_shed()
    point.shed_publisher = publisher.counters.events_shed
    point.shed_brokers = point.shed_total - point.shed_publisher
    point.rate_limited = publisher.counters.rate_limited
    all_counters = [n.counters for n in system.hierarchy.nodes()] + [
        publisher.counters
    ]
    point.credit_stalls = sum(c.credit_stalls for c in all_counters)
    point.overload_transitions = sum(
        c.overload_transitions for c in all_counters
    )
    return point


def run_overload(config: Optional[OverloadConfig] = None) -> OverloadResult:
    """Sweep every multiplier, controlled and uncontrolled."""
    config = config or OverloadConfig()
    result = OverloadResult(config=config)
    for multiplier in config.multipliers:
        result.controlled[multiplier] = run_point(config, multiplier, True)
        result.uncontrolled[multiplier] = run_point(config, multiplier, False)
    return result


def render(result: OverloadResult) -> str:
    config = result.config
    headers = [
        "Load",
        "Flow",
        "Offered",
        "Accepted",
        "Goodput/s",
        "p50 lat",
        "Max lat",
        "Shed@pub",
        "Shed@brk",
        "Peak queued",
    ]
    rows: List[List] = []
    for multiplier in config.multipliers:
        for point in (
            result.controlled[multiplier], result.uncontrolled[multiplier]
        ):
            rows.append(
                [
                    f"{multiplier:g}x",
                    "on" if point.controlled else "off",
                    point.offered,
                    point.accepted,
                    point.goodput,
                    point.p50_latency,
                    point.max_latency,
                    point.shed_publisher,
                    point.shed_brokers,
                    point.peak_queued,
                ]
            )
    title = (
        f"Overload sweep: service_rate={config.service_rate:g}/s per broker, "
        f"{config.duration:g}s open-loop + {config.tail:g}s tail, "
        f"SLO={config.slo:g}s (seed {config.seed})"
    )
    parts = [title, render_table(headers, rows)]
    parts.append(
        f"controlled-memory bound: peak queued must stay <= "
        f"{result.capacity_budget} (sum of configured queue capacities); "
        f"worst controlled peak was "
        f"{max(p.peak_queued for p in result.controlled.values())}"
    )
    worst = result.controlled[max(config.multipliers)]
    named = [
        (n.name, n.counters) for n in worst.system.hierarchy.nodes()
    ] + [(p.name, p.counters) for p in worst.system.publishers]
    parts.append(
        render_flow_summary(
            named,
            title=(
                f"Flow counters at {max(config.multipliers):g}x "
                "(controlled run)"
            ),
        )
    )
    return "\n\n".join(parts)


def run(config: Optional[OverloadConfig] = None) -> OverloadResult:
    result = run_overload(config)
    print(render(result))
    return result


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
