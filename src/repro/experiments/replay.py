"""Replay sweep: durable logs, catch-up subscribers, crash recovery,
and the exactly-once audit (DESIGN §11).

One seeded run exercises the whole replay surface:

- a **history phase** publishes a quote stream that lands in every
  broker's append-only log (the root's log is the ground truth);
- three **catch-up subscribers** then join late — one from offset 0,
  one from a mid-stream offset, one from an ISO-8601 timestamp — drain
  history at the configured replay rate (credit-paced when flow control
  is on), and switch to live delivery;
- a **live phase** publishes more traffic, with a stage-2 broker
  crash/restart in the middle: the restarted broker replays the tail it
  missed from the root's log (offset-addressed recovery);
- finally the **audit** (:func:`repro.log.audit.verify_exactly_once`)
  diffs every subscriber's delivery trace against the root log and
  must find zero gaps and zero duplicates outside the crash window.

The rendered report — catch-up convergence, per-session replay stats,
recovery counters, and the audit verdict — is the artifact CI's
``replay-gates`` job archives.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.engine import MultiStageEventSystem
from repro.flow import FlowConfig
from repro.log import (
    AuditReport,
    AuditSubscription,
    LogConfig,
    format_point,
    verify_exactly_once,
)
from repro.metrics.report import render_table

REPLAY_EVENT_CLASS = "Quote"
SCHEMA = ("class", "symbol", "price")


class Quote:
    def __init__(self, symbol: str, price: float):
        self._symbol = symbol
        self._price = price

    def get_symbol(self) -> str:
        return self._symbol

    def get_price(self) -> float:
        return self._price


@dataclass
class ReplayConfig:
    """Knobs of one replay run (defaults are CI-sized)."""

    stage_sizes: Tuple[int, ...] = (4, 2, 1)
    seed: int = 7
    ttl: float = 30.0
    #: Events published before / after the catch-ups join.
    history_events: int = 60
    live_events: int = 40
    publish_dt: float = 0.01
    #: Replay pacing (events/s drained by a catch-up session).
    replay_rate: float = 400.0
    replay_batch: int = 8
    link_window: int = 32
    #: Mid-stream origins for the offset- and time-addressed catch-ups.
    mid_offset: int = 30
    #: Crash a stage-2 broker this long into the live phase, for this
    #: long (0 duration = no crash).
    crash_after: float = 0.1
    crash_duration: float = 0.4
    #: Give up waiting for a catch-up to reach live after this long.
    max_convergence: float = 30.0


@dataclass
class CatchUpOutcome:
    """One catch-up session's measurements."""

    subscriber: str
    origin: str
    expected_history: int
    history_delivered: int = 0
    tap_delivered: int = 0
    dupes_discarded: int = 0
    convergence_time: float = 0.0
    live: bool = False


@dataclass
class ReplayResult:
    """Measurements from one replay run."""

    config: ReplayConfig
    catch_ups: List[CatchUpOutcome] = field(default_factory=list)
    audit: Optional[AuditReport] = None
    crash_window: Tuple[float, float] = (0.0, 0.0)
    log_records: int = 0
    log_segments: int = 0
    replay_events_sent: int = 0
    replay_dupes_discarded: int = 0
    catchup_taps: int = 0
    system: MultiStageEventSystem = field(default=None, repr=False)

    @property
    def converged(self) -> bool:
        return all(c.live for c in self.catch_ups)

    @property
    def clean(self) -> bool:
        return self.audit is not None and self.audit.clean


def run_replay(config: Optional[ReplayConfig] = None) -> ReplayResult:
    config = config or ReplayConfig()
    flow = FlowConfig(link_window=config.link_window)
    log = LogConfig(
        replay_rate=config.replay_rate, replay_batch=config.replay_batch
    )
    system = MultiStageEventSystem(
        stage_sizes=config.stage_sizes,
        seed=config.seed,
        ttl=config.ttl,
        tracing=True,
        flow=flow,
        log=log,
    )
    system.advertise(REPLAY_EVENT_CLASS, schema=SCHEMA)
    system.drain()
    result = ReplayResult(config=config, system=system)
    publisher = system.create_publisher("replay-feed")
    deliveries: Dict[str, List[float]] = {}
    audited: List[AuditSubscription] = []

    def attach(name: str):
        subscriber = system.create_subscriber(name)
        log_ = deliveries.setdefault(name, [])
        home = system.hierarchy.stage1_nodes()[0]
        subscription = system.subscribe(
            subscriber,
            'symbol = "Foo"',
            event_class=REPLAY_EVENT_CLASS,
            handler=lambda e, m, s: log_.append(m["price"]),
            at_node=home,
        )[0]
        system.drain()
        return subscriber, subscription

    # A veteran subscriber watches from the start (the differential
    # baseline and the recovery-path witness).
    veteran, veteran_sub = attach("replay-veteran")
    audited.append(AuditSubscription(veteran.name, veteran_sub.filter))

    # History phase.
    for i in range(config.history_events):
        publisher.publish(Quote("Foo", float(i)), event_class=REPLAY_EVENT_CLASS)
        system.run_for(config.publish_dt)
    system.run_for(0.5)

    # Late joiners: offset 0, a mid-stream offset, and an ISO timestamp.
    root_log = system.root.log
    mid_time = root_log.record_at(config.mid_offset).time
    origins = [
        ("replay-from-start", dict(from_offset=0), config.history_events),
        (
            "replay-from-offset",
            dict(from_offset=config.mid_offset),
            config.history_events - config.mid_offset,
        ),
        (
            "replay-from-time",
            dict(from_time=format_point(mid_time)),
            config.history_events - config.mid_offset,
        ),
    ]
    sessions = []
    for name, kwargs, expected in origins:
        subscriber, subscription = attach(name)
        sid = subscription.subscription_id
        started = system.sim.now
        subscriber.catch_up(sid, **kwargs)
        origin = next(iter(kwargs.items()))
        outcome = CatchUpOutcome(
            subscriber=name,
            origin=f"{origin[0]}={origin[1]}",
            expected_history=expected,
        )
        result.catch_ups.append(outcome)
        sessions.append((subscriber, subscription, sid, started, outcome))
        audited.append(
            AuditSubscription(
                subscriber.name,
                subscription.filter,
                from_offset=kwargs.get("from_offset", 0),
                from_time=(
                    mid_time if "from_time" in kwargs else 0.0
                ),
            )
        )

    # Drain every session to live.
    waited = 0.0
    while waited < config.max_convergence and not all(
        s.catch_up_live(sid) for s, _, sid, _, _ in sessions
    ):
        system.run_for(0.25)
        waited += 0.25
    for subscriber, _, sid, started, outcome in sessions:
        outcome.live = subscriber.catch_up_live(sid)
        outcome.convergence_time = (
            (system.sim.now - started) if outcome.live else config.max_convergence
        )

    # Live phase with a crash/restart in the middle.
    victim = system.hierarchy.stage1_nodes()[0].parent
    crash_at = system.sim.now + config.crash_after
    heal_at = crash_at + config.crash_duration
    if config.crash_duration:
        system.sim.schedule_at(crash_at, victim.crash)
        system.sim.schedule_at(heal_at, victim.restart)
        result.crash_window = (crash_at, heal_at + 6.0)
    for i in range(config.live_events):
        publisher.publish(
            Quote("Foo", float(config.history_events + i)),
            event_class=REPLAY_EVENT_CLASS,
        )
        system.run_for(config.publish_dt)
    system.run_for(6.0)

    for subscriber, _, sid, _, outcome in sessions:
        stats = subscriber.catch_up_stats(sid)
        outcome.history_delivered = stats["history_delivered"]
        outcome.tap_delivered = stats["tap_delivered"]
        outcome.dupes_discarded = stats["dupes_discarded"]

    result.log_records = len(root_log)
    result.log_segments = len(root_log.segments())
    nodes = system.hierarchy.nodes()
    result.replay_events_sent = sum(n.counters.replay_events_sent for n in nodes)
    result.replay_dupes_discarded = sum(
        n.counters.replay_dupes_discarded for n in nodes
    ) + sum(s.counters.replay_dupes_discarded for s in system.subscribers)
    result.catchup_taps = sum(n.counters.catchup_taps for n in nodes)
    windows = [result.crash_window] if config.crash_duration else []
    result.audit = verify_exactly_once(
        root_log, system.tracer, audited, fault_windows=windows
    )
    return result


def render(result: ReplayResult) -> str:
    config = result.config
    title = (
        f"Replay run: {config.history_events} history + {config.live_events} "
        f"live events, replay rate {config.replay_rate}/s, crash "
        f"{config.crash_duration}s (seed {config.seed})"
    )
    rows = []
    for outcome in result.catch_ups:
        rows.append(
            [
                outcome.subscriber,
                outcome.origin,
                f"{outcome.history_delivered}/{outcome.expected_history}",
                outcome.tap_delivered,
                outcome.dupes_discarded,
                f"{outcome.convergence_time:.2f}s"
                + ("" if outcome.live else " (never live!)"),
            ]
        )
    sessions = render_table(
        ["Catch-up", "Origin", "History", "Taps", "Dupes dropped", "To live"],
        rows,
    )
    totals = render_table(
        ["Metric", "Value"],
        [
            ["root log records", result.log_records],
            ["root log segments", result.log_segments],
            ["replay events sent (all brokers)", result.replay_events_sent],
            ["replay dupes discarded", result.replay_dupes_discarded],
            ["catch-up live taps", result.catchup_taps],
        ],
    )
    return "\n\n".join([title, sessions, totals, result.audit.render()])


def run(config: Optional[ReplayConfig] = None) -> ReplayResult:
    result = run_replay(config)
    print(render(result))
    print(
        f"\ncatch-ups converged: {result.converged}; "
        f"audit clean: {result.clean}"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
