"""Figure 7: matching rate per node.

The paper plots MR for 150 level-0 processes, 100 level-1 nodes and 10
level-2 nodes, and reports an *average matching rate of 0.87* for the
subscribers.  The reproduced shape: stage-0 and stage-1 MR concentrate
near 1 (pre-filtering means lower nodes rarely see irrelevant events),
with more spread at stage 1 than stage 2, and the subscriber average
lands in the same high-MR regime as the paper's 0.87.
"""

from typing import Dict, List, Optional, Tuple

from repro.experiments.common import ScenarioConfig, ScenarioResult, run_bibliographic
from repro.metrics.report import render_series

#: The paper's reported subscriber (level-0) average MR.
PAPER_SUBSCRIBER_MR = 0.87

#: Figure 7 plots these stages.
FIGURE7_STAGES = (0, 1, 2)

#: Scenario scale matching the figure (150 subscribers shown; the node
#: counts are the paper's hierarchy).  Workload constants are calibrated
#: like rlc_table.PAPER_SCALE (see EXPERIMENTS.md).
FIGURE7_SCALE = ScenarioConfig(
    stage_sizes=(100, 10, 1),
    n_subscribers=150,
    n_events=1000,
    placement="random",
    n_years=30,
    n_conferences=100,
    n_authors=500,
    n_records=3000,
    author_exponent=1.1,
    record_exponent=0.9,
    sibling_rate=0.06,
)


def mr_series(result: ScenarioResult) -> Dict[int, List[float]]:
    """Per-stage MR series over nodes that received at least one event."""
    return {
        stage: result.mr_values(stage)
        for stage in FIGURE7_STAGES
        if stage in result.counters_by_stage
    }


def render(result: ScenarioResult) -> str:
    series: List[Tuple[str, List[float]]] = [
        (f"MR of Level {stage} nodes", values)
        for stage, values in sorted(mr_series(result).items())
    ]
    body = render_series("Figure 7: Matching rate of the nodes", series)
    return (
        body
        + f"\n  subscriber average MR = {result.subscriber_average_mr():.4f}"
        + f" (paper: {PAPER_SUBSCRIBER_MR})"
    )


def run(config: Optional[ScenarioConfig] = None) -> ScenarioResult:
    result = run_bibliographic(config or FIGURE7_SCALE)
    print(render(result))
    return result


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
