"""Tracing experiment: the observability layer end-to-end.

Runs the chaos sweep with causal span tracing and per-stage sampling
switched on, then renders the full trace report: the fault windows
aligned against the drop/dup/retransmit spans they caused, per-stage
hop-latency histograms, the hottest brokers, the sampled stage series,
and one reconstructed publisher-to-subscriber event path.

Pass ``event_id=("chaos-feed", 12)`` (or ``--event=chaos-feed/12`` on
the command line) to reconstruct the path of a specific event instead of
the default pick.
"""

from dataclasses import replace
from typing import Optional, Tuple

from repro.experiments.chaos import ChaosConfig, ChaosResult, render, run_chaos
from repro.metrics.report import render_trace_path


def run(
    config: Optional[ChaosConfig] = None,
    event_id: Optional[Tuple[str, int]] = None,
) -> ChaosResult:
    config = config or ChaosConfig()
    if not config.tracing:
        config = replace(config, tracing=True)
    result = run_chaos(config)
    print(render(result))
    broken = result.tracer.incomplete_deliveries()
    print(
        f"\nspans recorded: {len(result.tracer)}; "
        f"events traced: {len(result.tracer.event_ids())}; "
        f"broken delivery paths: {len(broken)}"
    )
    if event_id is not None:
        print()
        print(render_trace_path(result.tracer, event_id))
    return result


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
