"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro.experiments [--quick] [rlc] [figure7] [comparison]
                                [ablations] [scalability] [multiclass]
                                [chaos] [tracing] [overload] [replay]
                                [flows] [--event=PUB/SEQ]

With no experiment names, everything runs.  ``--quick`` swaps the
paper-scale configurations for CI-sized ones (seconds instead of tens of
seconds).  ``tracing`` runs the chaos sweep with the observability layer
on and prints the trace report; ``--event=chaos-feed/12`` additionally
reconstructs that event's publisher-to-subscriber path.  ``overload``
sweeps offered load past saturation with and without the flow-control
subsystem (credits, bounded queues, shedding).  ``replay`` runs the
durable-log sweep: catch-up subscribers, crash-recovery replay, and the
exactly-once audit.  ``flows`` runs the information-flow sweep: the
telemetry rollup flow vs its flow-free twin (delivered-event and
downlink-byte reduction, raw-path byte-identity) plus the subtree-crash
scenario (dropped windows, re-install, excused audit).
"""

import sys

from repro.experiments import (
    ablations,
    chaos,
    comparison,
    figure7,
    flows,
    overload,
    replay,
    rlc_table,
    scalability,
    tracing,
)
from repro.experiments.multiclass import MulticlassConfig
from repro.experiments.multiclass import run as run_multiclass
from repro.experiments.common import ScenarioConfig

QUICK = ScenarioConfig(stage_sizes=(20, 5, 1), n_subscribers=200, n_events=200)


def main(argv) -> int:
    args = [a for a in argv if not a.startswith("-")]
    quick = "--quick" in argv
    event_id = None
    for arg in argv:
        if arg.startswith("--event="):
            publisher, _, sequence = arg[len("--event="):].rpartition("/")
            if not publisher or not sequence.isdigit():
                print(f"bad --event (want PUBLISHER/SEQ): {arg}", file=sys.stderr)
                return 2
            event_id = (publisher, int(sequence))
    all_experiments = {
        "rlc", "figure7", "comparison", "ablations", "scalability", "multiclass",
        "chaos", "tracing", "overload", "replay", "flows",
    }
    wanted = set(args) or all_experiments
    unknown = wanted - all_experiments
    if unknown:
        print(f"unknown experiments: {sorted(unknown)}", file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2

    if "rlc" in wanted:
        print("=" * 72)
        print("Paper §5.3: RLC table")
        print("=" * 72)
        rlc_table.run(QUICK if quick else None)
        print()
    if "figure7" in wanted:
        print("=" * 72)
        print("Paper Figure 7: matching rate per node")
        print("=" * 72)
        figure7.run(QUICK if quick else None)
        print()
    if "comparison" in wanted:
        print("=" * 72)
        print("Architecture comparison (§2.1)")
        print("=" * 72)
        comparison.run(QUICK if quick else None)
        print()
    if "ablations" in wanted:
        print("=" * 72)
        print("Ablations (§3.2, §4.2, §4.4)")
        print("=" * 72)
        ablations.run(QUICK if quick else None)
        print()
    if "scalability" in wanted:
        print("=" * 72)
        print("Scalability sweep (§5.3 claim)")
        print("=" * 72)
        scalability.run(QUICK if quick else None)
        print()
    if "multiclass" in wanted:
        print("=" * 72)
        print("Multi-class comparison (§3.4 degeneration)")
        print("=" * 72)
        run_multiclass(
            MulticlassConfig(stage_sizes=(10, 3, 1), n_subscribers=100,
                             n_events=200)
            if quick else None
        )
        print()
    if "chaos" in wanted:
        print("=" * 72)
        print("Chaos sweep: faults, crash/restart, convergence")
        print("=" * 72)
        chaos.run()
        print()
    if "tracing" in wanted:
        print("=" * 72)
        print("Observability: causal tracing + per-stage sampling")
        print("=" * 72)
        tracing.run(event_id=event_id)
        print()
    if "overload" in wanted:
        print("=" * 72)
        print("Overload sweep: flow control, backpressure, shedding")
        print("=" * 72)
        overload.run()
        print()
    if "replay" in wanted:
        print("=" * 72)
        print("Replay sweep: durable log, catch-up, crash recovery, audit")
        print("=" * 72)
        replay.run()
        print()
    if "flows" in wanted:
        print("=" * 72)
        print("Information flows: rollup vs flow-free twin, subtree crash")
        print("=" * 72)
        flows.run()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
