"""Ablations of the design choices the paper argues for in prose.

1. **Placement** (§4.2): similarity placement (the Figure-5 search)
   versus joining a random stage-1 node.  The paper argues similarity
   placement leaves *fewer covering filters* at upper stages and
   forwards each event along *fewer paths*; we measure both.
2. **Wildcard routing** (§4.4): attaching wildcard subscriptions at
   higher stages versus naively at stage 1.  The paper argues naive
   attachment overloads stage-1 nodes with the full class traffic; we
   measure the maximum stage-1 event load.
3. **Hierarchy depth** (§3.2): pre-filtering exists to bound per-node
   load; sweeping the number of stages shows the max per-node RLC
   falling as stages are added, at the price of more hops/messages.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import ScenarioConfig, ScenarioResult, run_bibliographic
from repro.metrics.report import render_table


@dataclass
class PlacementAblation:
    similarity: ScenarioResult
    random: ScenarioResult

    def upper_stage_filters(self) -> Tuple[int, int]:
        """Total filters above stage 1 (similarity, random)."""

        def total(result: ScenarioResult) -> int:
            return sum(
                count
                for stage, count in result.filters_per_stage().items()
                if stage >= 2
            )

        return total(self.similarity), total(self.random)

    def forwarded_messages(self) -> Tuple[int, int]:
        """Broker-forwarded event copies (similarity, random)."""

        def total(result: ScenarioResult) -> int:
            return sum(
                counters.events_forwarded
                for stage in result.stages()
                if stage >= 1
                for _, counters in result.counters_by_stage[stage]
            )

        return total(self.similarity), total(self.random)


def run_placement_ablation(
    config: Optional[ScenarioConfig] = None,
) -> PlacementAblation:
    """Same workload, similarity vs random placement."""
    base = config or ScenarioConfig()
    similarity = run_bibliographic(
        ScenarioConfig(**{**base.__dict__, "placement": "similarity"})
    )
    random_placement = run_bibliographic(
        ScenarioConfig(**{**base.__dict__, "placement": "random"})
    )
    return PlacementAblation(similarity, random_placement)


@dataclass
class WildcardAblation:
    routed: ScenarioResult  # HANDLE-WILDCARD-SUBS active
    naive: ScenarioResult  # wildcard subs treated like any other

    def max_stage1_load(self) -> Tuple[int, int]:
        """Max events received by a stage-1 node (routed, naive).

        The §4.4 overload metric; at small scales it is sensitive to
        placement noise — prefer :meth:`total_stage1_load` there.
        """
        return (
            max(self.routed.stage1_event_loads(), default=0),
            max(self.naive.stage1_event_loads(), default=0),
        )

    def total_stage1_load(self) -> Tuple[int, int]:
        """Total events through stage 1 (routed, naive).

        Monotone in the wildcard traffic: routing wildcard subscriptions
        to higher stages removes their whole class traffic from stage 1.
        """
        return (
            sum(self.routed.stage1_event_loads()),
            sum(self.naive.stage1_event_loads()),
        )


def run_wildcard_ablation(
    config: Optional[ScenarioConfig] = None,
    wildcard_rate: float = 0.3,
) -> WildcardAblation:
    """Wildcard-heavy workload, §4.4 routing on vs off."""
    base = config or ScenarioConfig()
    overrides = {**base.__dict__, "wildcard_rate": wildcard_rate}
    routed = run_bibliographic(
        ScenarioConfig(**{**overrides, "wildcard_routing": True})
    )
    naive = run_bibliographic(
        ScenarioConfig(**{**overrides, "wildcard_routing": False})
    )
    return WildcardAblation(routed, naive)


@dataclass
class CompactionAblation:
    plain: ScenarioResult
    compacted: ScenarioResult

    def stage1_filters(self) -> Tuple[int, int]:
        """Total filters held by stage-1 nodes (plain, compacted)."""
        return (
            self.plain.filters_per_stage().get(1, 0),
            self.compacted.filters_per_stage().get(1, 0),
        )

    def subscriber_mr(self) -> Tuple[float, float]:
        """Subscriber MR (plain, compacted): merging weakens stage-1
        filters, so compacted MR can only drop — the §3 tradeoff."""
        return (
            self.plain.subscriber_average_mr(),
            self.compacted.subscriber_average_mr(),
        )


def run_compaction_ablation(
    config: Optional[ScenarioConfig] = None,
) -> CompactionAblation:
    """Covering-merge table compaction (§4's g1-collapse) on vs off.

    Best shown on a similarity-heavy workload where many subscriptions
    share their rigid constraints and differ only in bounds.
    """
    base = config or ScenarioConfig()
    plain = run_bibliographic(ScenarioConfig(**{**base.__dict__, "compact": False}))
    compacted = run_bibliographic(
        ScenarioConfig(**{**base.__dict__, "compact": True})
    )
    return CompactionAblation(plain, compacted)


@dataclass
class DepthPoint:
    stage_sizes: Tuple[int, ...]
    max_node_rlc: float
    global_rlc: float
    messages: int


def run_depth_ablation(
    config: Optional[ScenarioConfig] = None,
    depth_configs: Sequence[Tuple[int, ...]] = ((1,), (10, 1), (40, 10, 1)),
) -> List[DepthPoint]:
    """Sweep hierarchy depth; deeper trees bound per-node RLC tighter."""
    base = config or ScenarioConfig()
    points: List[DepthPoint] = []
    for stage_sizes in depth_configs:
        result = run_bibliographic(
            ScenarioConfig(**{**base.__dict__, "stage_sizes": tuple(stage_sizes)})
        )
        broker_rlcs = [
            rlc
            for stage in result.stages()
            if stage >= 1
            for rlc in result.rlc_values(stage)
        ]
        points.append(
            DepthPoint(
                stage_sizes=tuple(stage_sizes),
                max_node_rlc=max(broker_rlcs),
                global_rlc=result.rlc_global_total(),
                messages=result.system.network.stats.total_messages,
            )
        )
    return points


def render_depth(points: List[DepthPoint]) -> str:
    return render_table(
        ["Stages", "Max node RLC", "Global RLC", "Messages"],
        [
            ["/".join(map(str, p.stage_sizes)), p.max_node_rlc, p.global_rlc, p.messages]
            for p in points
        ],
    )


def run(config: Optional[ScenarioConfig] = None) -> None:
    """Run all three ablations and print their summaries."""
    placement = run_placement_ablation(config)
    sim_filters, rnd_filters = placement.upper_stage_filters()
    sim_fwd, rnd_fwd = placement.forwarded_messages()
    print("Placement ablation (similarity vs random):")
    print(f"  upper-stage filters: {sim_filters} vs {rnd_filters}")
    print(f"  forwarded event copies: {sim_fwd} vs {rnd_fwd}")

    wildcard = run_wildcard_ablation(config)
    routed_load, naive_load = wildcard.max_stage1_load()
    print("Wildcard ablation (routed vs naive stage-1 attach):")
    print(f"  max stage-1 event load: {routed_load} vs {naive_load}")

    compaction = run_compaction_ablation(config)
    plain_filters, compacted_filters = compaction.stage1_filters()
    plain_mr, compacted_mr = compaction.subscriber_mr()
    print("Compaction ablation (plain vs covering-merged tables):")
    print(f"  stage-1 filters: {plain_filters} vs {compacted_filters}")
    print(f"  subscriber MR:   {plain_mr:.3f} vs {compacted_mr:.3f}")

    points = run_depth_ablation(config)
    print("Depth ablation:")
    print(render_depth(points))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
