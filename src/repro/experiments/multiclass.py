"""Multi-class comparison: where topic-based addressing stops degenerating.

On a single-class workload, one topic per class means *every* event goes
to *every* subscriber — topic-based is indistinguishable from broadcast
(the §3.4 degeneration).  With several event classes the class topic
regains some selectivity: this experiment runs a mixed Stock + Auction
workload through the multi-stage overlay, topic-based, and broadcast
fabrics and measures how much of the paper's content selectivity each
recovers.  Expected ordering of events-per-subscriber::

    multistage  <  topicbased  <  broadcast

with identical deliveries everywhere (the soundness invariant).
"""

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.broadcast import BroadcastSystem
from repro.baselines.topicbased import TopicBasedSystem
from repro.core.engine import MultiStageEventSystem
from repro.metrics.matching import average_matching_rate
from repro.metrics.report import render_table
from repro.sim.rng import RngRegistry
from repro.workloads.auctions import AUCTION_EVENT_CLASS, AuctionWorkload
from repro.workloads.stocks import STOCK_EVENT_CLASS, StockWorkload


@dataclass
class MulticlassConfig:
    stage_sizes: Tuple[int, ...] = (20, 5, 1)
    n_subscribers: int = 200
    n_events: int = 400
    #: Fraction of events (and subscriptions) that are stock quotes.
    stock_fraction: float = 0.6
    seed: int = 0


@dataclass
class MulticlassResult:
    architecture: str
    edge_avg_received: float
    edge_avg_mr: float
    total_messages: int
    deliveries: Counter


def _shared_workload(config: MulticlassConfig):
    rngs = RngRegistry(config.seed)
    stocks = StockWorkload(rngs.stream("stocks"), n_symbols=40)
    auctions = AuctionWorkload(rngs.stream("auctions"))
    split_rng = rngs.stream("split")

    subscriptions: List[Tuple[str, object]] = []
    sub_rng = rngs.stream("subs")
    for _ in range(config.n_subscribers):
        if split_rng.random() < config.stock_fraction:
            subscriptions.append(
                (STOCK_EVENT_CLASS, stocks.sample_subscription(sub_rng))
            )
        else:
            subscriptions.append(
                (AUCTION_EVENT_CLASS, auctions.sample_subscription(sub_rng))
            )

    events: List[Tuple[str, object]] = []
    for _ in range(config.n_events):
        if split_rng.random() < config.stock_fraction:
            events.append((STOCK_EVENT_CLASS, stocks.next_quote()))
        else:
            events.append((AUCTION_EVENT_CLASS, auctions.next_listing()))
    return stocks, auctions, subscriptions, events


def _event_key(metadata) -> tuple:
    return tuple(sorted(metadata.items()))


def _collector(deliveries: Counter, name: str) -> Callable:
    def handler(event, metadata, subscription):
        deliveries[(name, _event_key(metadata))] += 1

    return handler


def _measure(system, deliveries, architecture) -> MulticlassResult:
    edge_counters = [s.counters for s in system.subscribers]
    return MulticlassResult(
        architecture=architecture,
        edge_avg_received=sum(c.events_received for c in edge_counters)
        / max(1, len(edge_counters)),
        edge_avg_mr=average_matching_rate(edge_counters),
        total_messages=system.network.stats.total_messages,
        deliveries=deliveries,
    )


def _run_multistage(config, stocks, auctions, subscriptions, events):
    system = MultiStageEventSystem(stage_sizes=config.stage_sizes, seed=config.seed)
    system.advertise(STOCK_EVENT_CLASS, schema=stocks.schema,
                     stage_prefixes=[3, 3, 2, 1][: len(config.stage_sizes) + 1])
    system.advertise(AUCTION_EVENT_CLASS, schema=auctions.schema,
                     stage_prefixes=[5, 4, 3, 1][: len(config.stage_sizes) + 1])
    system.drain()
    deliveries: Counter = Counter()
    for index, (event_class, filter_) in enumerate(subscriptions):
        subscriber = system.create_subscriber(f"sub-{index}")
        system.subscribe(
            subscriber, filter_, event_class=event_class,
            handler=_collector(deliveries, subscriber.name),
        )
        system.drain()
    publisher = system.create_publisher()
    for event_class, event in events:
        publisher.publish(event, event_class=event_class)
    system.drain()
    return _measure(system, deliveries, "multistage")


def _run_baseline(architecture, config, stocks, auctions, subscriptions, events):
    if architecture == "topicbased":
        system = TopicBasedSystem(seed=config.seed)
    elif architecture == "broadcast":
        system = BroadcastSystem(seed=config.seed)
    else:
        raise ValueError(f"unknown architecture {architecture!r}")
    stages = len(config.stage_sizes) + 1
    system.advertise(stocks.advertisement(stages))
    system.advertise(auctions.advertisement())
    deliveries: Counter = Counter()
    for index, (event_class, filter_) in enumerate(subscriptions):
        subscriber = system.create_subscriber(f"sub-{index}")
        system.subscribe(
            subscriber, filter_, event_class=event_class,
            handler=_collector(deliveries, subscriber.name),
        )
    publisher = system.create_publisher()
    for event_class, event in events:
        publisher.publish(event, event_class=event_class)
    system.drain()
    return _measure(system, deliveries, architecture)


def run_multiclass(
    config: Optional[MulticlassConfig] = None,
) -> Dict[str, MulticlassResult]:
    config = config or MulticlassConfig()
    stocks, auctions, subscriptions, events = _shared_workload(config)
    results = {
        "multistage": _run_multistage(config, stocks, auctions, subscriptions, events)
    }
    for architecture in ("topicbased", "broadcast"):
        stocks2, auctions2, subscriptions2, events2 = _shared_workload(config)
        results[architecture] = _run_baseline(
            architecture, config, stocks2, auctions2, subscriptions2, events2
        )
    return results


def render(results: Dict[str, MulticlassResult]) -> str:
    rows = [
        [r.architecture, r.edge_avg_received, r.edge_avg_mr, r.total_messages]
        for r in results.values()
    ]
    return render_table(
        ["Architecture", "Events/subscriber", "Edge MR", "Messages"], rows
    )


def run(config: Optional[MulticlassConfig] = None) -> Dict[str, MulticlassResult]:
    results = run_multiclass(config)
    print(render(results))
    return results


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run()
