"""Subscriber runtime: Figure 5(a) join protocol + perfect stage-0 filtering.

The subscriber runtime is the paper's "user-level" (stage-0) process.  It
owns the *original* subscriptions — standard conjunctive filters plus any
residual closure predicates — and is the only place the full filters run
and the only place event payloads are unmarshaled: expressiveness and
event safety are enforced end-to-end here, while everything upstream saw
only weakened filters and meta-data.
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.subscription import Subscription
from repro.events.serialization import Envelope, unmarshal
from repro.filters.filter import Filter
from repro.flow import FlowConfig
from repro.metrics.counters import NodeCounters
from repro.obs.tracing import SUBSCRIBER_STAGE, EventTracer
from repro.overlay.channel import ReliableReceiver, ReliableSender
from repro.overlay.messages import (
    AcceptedAt,
    Ack,
    CatchUpBatch,
    CatchUpDone,
    CatchUpLive,
    CatchUpRequest,
    CreditGrant,
    Disconnect,
    JoinAt,
    Publish,
    PublishBatch,
    Reconnect,
    Renewal,
    Sequenced,
    SubscriptionRequest,
    Unsubscribe,
)
from repro.runtime.base import Executor, Transport
from repro.sim.kernel import Process
from repro.sim.trace import TraceRecorder

#: The handler signature: (typed event object, meta-data, subscription).
Handler = Callable[[Any, Any, Subscription], None]


@dataclass
class _SubscriptionState:
    subscription: Subscription
    handler: Optional[Handler]
    home: Optional[Process] = None
    stored_filter: Optional[Filter] = None
    active: bool = True
    join_hops: int = 0

    @property
    def joined(self) -> bool:
        return self.home is not None


class _CatchUpSession:
    """Subscriber-side state of one catch-up (see :mod:`repro.log.replay`).

    The ``seen`` set is the exactly-once keystone: history, live taps,
    and (after the path goes live) the normal home-broker stream all
    overlap around the handover, and whichever copy of an event arrives
    first wins — every later copy is discarded.  The set is a bounded
    LRU; the overlap it must remember is recent by construction (the
    fence and the handover are both "now"-ish), so eviction of old ids
    is safe long before the bound matters.
    """

    __slots__ = (
        "subscription_id",
        "history_done",
        "live",
        "history_delivered",
        "tap_delivered",
        "dupes",
        "_seen",
        "_seen_limit",
    )

    def __init__(self, subscription_id: int, seen_limit: int = 65536) -> None:
        self.subscription_id = subscription_id
        #: The root drained every record up to the session fence.
        self.history_done = False
        #: Switchover announced: the overlay path now serves this alone.
        self.live = False
        self.history_delivered = 0
        self.tap_delivered = 0
        #: Copies discarded because another stream delivered them first.
        self.dupes = 0
        self._seen: "OrderedDict[Tuple, None]" = OrderedDict()
        self._seen_limit = seen_limit

    def remember(self, event_id: Tuple) -> bool:
        """Record one delivery; False when the event was already seen."""
        if event_id in self._seen:
            return False
        self._seen[event_id] = None
        if len(self._seen) > self._seen_limit:
            self._seen.popitem(last=False)
        return True


class SubscriberRuntime(Process):
    """A stage-0 user process holding one or more subscriptions."""

    def __init__(
        self,
        sim: Executor,
        network: Transport,
        name: str,
        root: Process,
        ttl: float = 60.0,
        trace: Optional[TraceRecorder] = None,
        reliable: bool = True,
        tracer: Optional[EventTracer] = None,
        flow: Optional[FlowConfig] = None,
    ):
        super().__init__(sim, name)
        self.network = network
        self.root = root
        self.ttl = ttl
        #: Acked, sequence-numbered control channel toggle.
        self.reliable_enabled = reliable
        #: Flow-control knobs: bounds the control channels' send windows.
        self.flow = flow
        # One reliable sender per home node (order matters between a
        # Renewal restoring a filter and an Unsubscribe removing it).
        # Keyed by the home's *name* — the stable identity — not id().
        self._control_out: Dict[str, ReliableSender] = {}
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        #: Causal span tracer (shared system-wide when observability is on).
        self.tracer = tracer if tracer is not None else EventTracer(enabled=False)
        self.counters = NodeCounters()
        #: Publish-to-delivery latencies (simulated time), §5-style metric.
        self.delivery_latencies: List[float] = []
        self._states: Dict[int, _SubscriptionState] = {}
        self._renew_handle = None
        self._maintenance_interval: Optional[float] = None
        self.offline = False
        # Disjunction-group delivery dedup: (group, event_id) pairs seen,
        # bounded LRU (branches of one OR can arrive over several paths).
        self._delivered_groups: "OrderedDict[Tuple, None]" = OrderedDict()
        self._delivered_groups_limit = 4096
        # Catch-up replay (see repro.log.replay): per-subscription
        # sessions (kept after switchover — their seen-sets are the
        # handover dedup) and per-peer receivers for the root's reliable
        # replay stream.
        self._catch_up: Dict[int, _CatchUpSession] = {}
        self._framed_in: Dict[str, ReliableReceiver] = {}

    # ------------------------------------------------------------------
    # Subscribing (Figure 5a)
    # ------------------------------------------------------------------

    def subscribe(
        self,
        subscription: Subscription,
        handler: Optional[Handler] = None,
        at_node: Optional[Process] = None,
    ) -> int:
        """Send ``Subscription(fsub)`` to the root; returns the id used to
        correlate ``accepted-At`` and to unsubscribe later.

        ``at_node`` bypasses the Figure-5 search and sends the request to
        a specific node (a stage-1 node inserts immediately) — the
        locality/random placement the ablation experiments compare
        against similarity placement (§4.2).
        """
        state = _SubscriptionState(subscription, handler)
        self._states[subscription.subscription_id] = state
        self.counters.set_filters_held(len(self._active_states()))
        self._send_request(state, at_node if at_node is not None else self.root)
        return subscription.subscription_id

    def unsubscribe(self, subscription_id: int, explicit: bool = True) -> None:
        """Stop a subscription.

        With ``explicit=True`` an ``Unsubscribe`` is sent to the home node
        for immediate removal; either way the runtime stops renewing, so
        the soft state upstream decays within 3xTTL (§4.3).
        """
        state = self._states.get(subscription_id)
        if state is None or not state.active:
            return
        state.active = False
        self.counters.set_filters_held(len(self._active_states()))
        if explicit and state.joined and state.stored_filter is not None:
            self._send_control(state.home, Unsubscribe(state.stored_filter, self))

    # ------------------------------------------------------------------
    # Catch-up replay (late joiners; see repro.log.replay)
    # ------------------------------------------------------------------

    def catch_up(
        self,
        subscription_id: int,
        from_offset: Optional[int] = None,
        from_time: Optional[Any] = None,
    ) -> None:
        """Ask the root to replay history for a joined subscription.

        ``from_offset`` picks a root-log line offset, ``from_time`` a
        point in time (simulated seconds or an ISO-8601 string anchored
        at :data:`repro.log.EPOCH_ISO`); neither means "everything the
        log retains".  History arrives at the configured replay rate
        (credit-bounded when flow control is on), live events are tapped
        in from the request onward, and once the normal overlay path
        covers the subscription the root hands over
        (:meth:`catch_up_live` turns True) — no gap, no duplicate.
        """
        state = self._states.get(subscription_id)
        if state is None or not state.active:
            raise KeyError(f"no active subscription {subscription_id}")
        if not state.joined:
            raise RuntimeError(
                f"subscription {subscription_id} must be joined before catch-up"
            )
        self._catch_up[subscription_id] = _CatchUpSession(subscription_id)
        self._send_control(
            self.root,
            CatchUpRequest(
                subscription_id,
                state.subscription.filter,
                state.subscription.event_class,
                self,
                state.home,
                from_offset,
                from_time,
            ),
        )

    def catch_up_history_done(self, subscription_id: int) -> bool:
        """True when the root has drained this session's history."""
        session = self._catch_up.get(subscription_id)
        return session is not None and session.history_done

    def catch_up_live(self, subscription_id: int) -> bool:
        """True when the switchover to normal live delivery completed."""
        session = self._catch_up.get(subscription_id)
        return session is not None and session.live

    def catch_up_stats(self, subscription_id: int) -> Optional[Dict[str, int]]:
        """Replay bookkeeping for one session (None when unknown)."""
        session = self._catch_up.get(subscription_id)
        if session is None:
            return None
        return {
            "history_delivered": session.history_delivered,
            "tap_delivered": session.tap_delivered,
            "dupes_discarded": session.dupes,
        }

    def _send_control(self, home: Process, payload: Any) -> None:
        """Send one control message to a home node (reliably when enabled)."""
        if not self.reliable_enabled:
            self.network.send(self, home, payload)
            return
        channel = self._control_out.get(home.name)
        if channel is None:
            channel = self._control_out[home.name] = ReliableSender(
                self.sim,
                lambda frame, home=home: self.network.send(self, home, frame),
                self._count_retransmits,
                observer=lambda epoch, frames, peer=home.name: (
                    self._trace_retransmits(peer, epoch, frames)
                ),
                window=self.flow.control_window if self.flow is not None else None,
            )
        channel.send(payload)

    def _count_retransmits(self, frames: int) -> None:
        self.counters.control_retransmits += frames

    def _trace_retransmits(self, peer: str, epoch: int, frames: tuple) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.span(
            self.sim.now,
            "retransmit",
            self.name,
            SUBSCRIBER_STAGE,
            details=(
                ("peer", peer),
                ("epoch", epoch),
                ("frames", len(frames)),
                ("payloads", ",".join(type(f.payload).__name__ for f in frames)),
            ),
        )

    @property
    def control_idle(self) -> bool:
        """True when every reliable control frame has been acknowledged."""
        return all(channel.idle for channel in self._control_out.values())

    def _send_request(self, state: _SubscriptionState, node: Process) -> None:
        request = SubscriptionRequest(
            state.subscription.filter,
            state.subscription.event_class,
            self,
            state.subscription.subscription_id,
        )
        self.network.send(self, node, request)

    # ------------------------------------------------------------------
    # Crash lifecycle
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: the base class cancels the owned renew timer; drop
        the dangling reference so :meth:`restart` can re-arm cleanly."""
        super().crash()
        self._renew_handle = None

    def restart(self) -> None:
        """Come back up; resume the renewal chain if maintenance was on."""
        super().restart()
        if self._maintenance_interval is not None and not self.offline:
            self._renew_handle = self.call_later(
                self._maintenance_interval,
                self._renew_task,
                self._maintenance_interval,
            )

    # ------------------------------------------------------------------
    # Disconnection (durable subscriptions, §2.1)
    # ------------------------------------------------------------------

    def _homes(self) -> List[Process]:
        """Distinct home nodes of the active, joined subscriptions."""
        homes: Dict[int, Process] = {}
        for state in self._active_states():
            if state.joined:
                homes[id(state.home)] = state.home
        return list(homes.values())

    def disconnect(self, durable: bool = True) -> None:
        """Go offline gracefully.

        With ``durable=True`` every home node buffers matching events
        for replay on :meth:`reconnect` (bounded by the node's buffer
        limit); renewals pause — so an absence beyond 3xTTL still loses
        the subscriptions, exactly the paper's soft-state semantics.
        """
        self.offline = True
        for home in self._homes():
            self.network.send(self, home, Disconnect(durable=durable))
        if self._renew_handle is not None:
            self._renew_handle.cancel()
            self._renew_handle = None

    def rejoin(self, subscription_id: int) -> None:
        """Re-run the Figure-5 join for a subscription from scratch.

        Used after an absence longer than the lease window (the upstream
        soft state has decayed) or when the home node died: the
        subscription's placement state resets and a fresh
        ``Subscription(fsub)`` goes to the root.
        """
        state = self._states.get(subscription_id)
        if state is None or not state.active:
            raise KeyError(f"no active subscription {subscription_id}")
        state.home = None
        state.stored_filter = None
        state.join_hops = 0
        self._send_request(state, self.root)

    def reconnect(self) -> None:
        """Come back online: homes flush buffers, renewals resume."""
        self.offline = False
        for home in self._homes():
            self.network.send(self, home, Reconnect())
        if self._maintenance_interval is not None and self._renew_handle is None:
            self._renew_handle = self.call_later(
                self._maintenance_interval,
                self._renew_task,
                self._maintenance_interval,
            )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def receive(self, message: Any, sender: Process) -> None:
        if isinstance(message, Publish):
            self._on_publish(message.envelope, sender)
        elif isinstance(message, PublishBatch):
            # A coalesced run from the home node: deliver in batch order,
            # which is exactly the unbatched per-destination send order.
            for publish in message.publishes:
                self._on_publish(publish.envelope, sender)
        elif isinstance(message, JoinAt):
            self.counters.control_messages += 1
            state = self._states.get(message.subscription_id)
            if state is not None and state.active and not state.joined:
                state.join_hops += 1
                self._send_request(state, message.node)
        elif isinstance(message, AcceptedAt):
            self.counters.control_messages += 1
            state = self._states.get(message.subscription_id)
            if state is not None:
                state.home = message.node
                state.stored_filter = message.stored_filter
                self.trace.record(
                    self.sim.now, "joined", self.name,
                    home=message.node.name, hops=state.join_hops,
                )
        elif isinstance(message, Ack):
            channel = self._control_out.get(sender.name)
            if channel is not None:
                channel.on_ack(message)
        elif isinstance(message, Sequenced):
            # The root's reliable replay stream (catch-up batches and
            # session control), one receiver per framing peer.
            receiver = self._framed_in.get(sender.name)
            if receiver is None:
                capacity = (
                    self.flow.control_window if self.flow is not None else None
                )
                receiver = self._framed_in[sender.name] = ReliableReceiver(
                    capacity=capacity
                )
            before = receiver.dups_discarded
            ack = receiver.on_frame(
                message, lambda payload: self._on_framed(payload, sender)
            )
            self.counters.control_dups_discarded += (
                receiver.dups_discarded - before
            )
            self.network.send(self, sender, ack)
        elif isinstance(message, (CatchUpBatch, CatchUpDone, CatchUpLive)):
            # Plain (unframed) replay stream: the unreliable ablation.
            self._on_framed(message, sender)
        else:
            raise TypeError(f"{self.name}: unexpected message {message!r}")

    def _on_framed(self, payload: Any, sender: Process) -> None:
        if isinstance(payload, CatchUpBatch):
            self._on_catch_up_batch(payload, sender)
            return
        self.counters.control_messages += 1
        if isinstance(payload, CatchUpDone):
            session = self._catch_up.get(payload.subscription_id)
            if session is not None:
                session.history_done = True
        elif isinstance(payload, CatchUpLive):
            session = self._catch_up.get(payload.subscription_id)
            if session is not None:
                session.live = True
        else:
            raise TypeError(f"{self.name}: unexpected framed {payload!r}")

    def _on_catch_up_batch(self, message: CatchUpBatch, sender: Process) -> None:
        session = self._catch_up.get(message.subscription_id)
        if session is None:
            return  # stale stream for a session we no longer track
        state = self._states.get(message.subscription_id)
        for publish in message.publishes:
            self._deliver_catch_up(
                session, state, publish.envelope, sender, message.history
            )
        if message.history and self.flow is not None and message.publishes:
            # One credit per consumed history event, back on the control
            # channel: the replay rate composes with PR 5's credit
            # windows exactly like live traffic does.
            self._send_control(sender, CreditGrant(len(message.publishes)))

    def _deliver_catch_up(
        self,
        session: _CatchUpSession,
        state: Optional[_SubscriptionState],
        envelope: Envelope,
        sender: Process,
        history: bool,
    ) -> None:
        """Deliver one replayed (or tapped) event with session dedup.

        Stage-0 semantics are identical to live delivery — exact filter,
        disjunction-group dedup, residual closure, unmarshal-once —
        except that replayed events never enter the delivery-latency
        series (a historical event's publish-to-now span measures the
        subscriber's lateness, not the system's delivery latency).
        """
        matched = (
            state is not None
            and state.active
            and state.subscription.filter.matches(envelope.metadata)
        )
        self.counters.bytes_received += len(envelope)
        self.counters.on_event(matched=matched, forwarded_to=0, evaluations=1)
        tracing = self.tracer.enabled
        delivered_before = self.counters.events_delivered if tracing else 0
        if matched:
            if envelope.event_id is not None and not session.remember(
                envelope.event_id
            ):
                session.dupes += 1
                self.counters.replay_dupes_discarded += 1
            else:
                subscription = state.subscription
                event = unmarshal(envelope)
                deliver = True
                if subscription.group is not None and envelope.event_id is not None:
                    key = (subscription.group, envelope.event_id)
                    if key in self._delivered_groups:
                        deliver = False
                    else:
                        self._delivered_groups[key] = None
                        if len(self._delivered_groups) > self._delivered_groups_limit:
                            self._delivered_groups.popitem(last=False)
                closure = subscription.closure
                if deliver and closure is not None and closure.residual is not None:
                    if not closure.residual(event):
                        deliver = False
                if deliver:
                    if history:
                        session.history_delivered += 1
                    else:
                        session.tap_delivered += 1
                    self.counters.events_delivered += 1
                    self.counters.catchup_delivered += 1
                    if state.handler is not None:
                        state.handler(event, envelope.metadata, subscription)
        if tracing:
            self.tracer.span(
                self.sim.now,
                "deliver",
                self.name,
                SUBSCRIBER_STAGE,
                trace_id=envelope.event_id,
                details=(
                    ("src", sender.name),
                    ("matched", matched),
                    (
                        "delivered",
                        self.counters.events_delivered - delivered_before,
                    ),
                    ("latency", None),
                    ("replay", "history" if history else "tap"),
                ),
            )

    # ------------------------------------------------------------------
    # Perfect filtering and delivery (stage 0)
    # ------------------------------------------------------------------

    def _on_publish(self, envelope: Envelope, sender: Process) -> None:
        # Subscriptions homed at different nodes each receive their own
        # copy stream; a copy from node N serves exactly the subscriptions
        # homed at N.  This keeps per-subscription delivery exactly-once
        # even when one subscriber attaches at several points of the tree.
        self.counters.bytes_received += len(envelope)
        states = [s for s in self._active_states() if s.home is sender]
        matched_states = []
        for state in states:
            if state.subscription.filter.matches(envelope.metadata):
                matched_states.append(state)
        self.counters.on_event(
            matched=bool(matched_states),
            forwarded_to=0,
            evaluations=len(states),
        )
        tracing = self.tracer.enabled
        delivered_before = self.counters.events_delivered if tracing else 0
        if matched_states:
            if envelope.published_at is not None:
                self.delivery_latencies.append(self.sim.now - envelope.published_at)
            # Event safety: the payload is opened exactly once, at the edge.
            event = unmarshal(envelope)
            for state in matched_states:
                subscription = state.subscription
                session = self._catch_up.get(subscription.subscription_id)
                if session is not None and envelope.event_id is not None:
                    # Around the catch-up handover the same event can
                    # also arrive via the replay stream; first copy in
                    # wins, later ones are discarded (exactly-once).
                    if not session.remember(envelope.event_id):
                        session.dupes += 1
                        self.counters.replay_dupes_discarded += 1
                        continue
                if subscription.group is not None and envelope.event_id is not None:
                    key = (subscription.group, envelope.event_id)
                    if key in self._delivered_groups:
                        continue  # another branch already delivered this event
                    self._delivered_groups[key] = None
                    if len(self._delivered_groups) > self._delivered_groups_limit:
                        self._delivered_groups.popitem(last=False)
                closure = subscription.closure
                if closure is not None and closure.residual is not None:
                    if not closure.residual(event):
                        continue
                self.counters.events_delivered += 1
                if state.handler is not None:
                    state.handler(event, envelope.metadata, subscription)
        if tracing:
            latency = (
                self.sim.now - envelope.published_at
                if envelope.published_at is not None
                else None
            )
            self.tracer.span(
                self.sim.now,
                "deliver",
                self.name,
                SUBSCRIBER_STAGE,
                trace_id=envelope.event_id,
                details=(
                    ("src", sender.name),
                    ("matched", bool(matched_states)),
                    (
                        "delivered",
                        self.counters.events_delivered - delivered_before,
                    ),
                    ("latency", latency),
                ),
            )

    def _active_states(self) -> List[_SubscriptionState]:
        return [s for s in self._states.values() if s.active]

    # ------------------------------------------------------------------
    # Renewal task (§4.3)
    # ------------------------------------------------------------------

    def start_maintenance(self) -> None:
        self.stop_maintenance()
        interval = self.ttl * 0.5
        self._maintenance_interval = interval
        if not self.offline:
            self._renew_handle = self.call_later(
                interval, self._renew_task, interval
            )

    def stop_maintenance(self) -> None:
        if self._renew_handle is not None:
            self._renew_handle.cancel()
            self._renew_handle = None
        self._maintenance_interval = None

    def _renew_task(self, interval: float) -> None:
        by_home: Dict[int, List] = {}
        homes: Dict[int, Process] = {}
        for state in self._active_states():
            if not state.joined or state.stored_filter is None:
                continue
            key = id(state.home)
            homes[key] = state.home
            by_home.setdefault(key, []).append(
                (state.stored_filter, state.subscription.event_class)
            )
        for key, items in by_home.items():
            deduped = tuple(dict.fromkeys(items))
            self._send_control(homes[key], Renewal(deduped))
        self._renew_handle = self.call_later(interval, self._renew_task, interval)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def subscriptions(self) -> List[Subscription]:
        return [s.subscription for s in self._active_states()]

    def home_of(self, subscription_id: int) -> Optional[Process]:
        state = self._states.get(subscription_id)
        return state.home if state else None

    def all_joined(self) -> bool:
        """True when every active subscription has found its home node."""
        return all(s.joined for s in self._active_states())

    def __repr__(self) -> str:
        return f"SubscriberRuntime({self.name}, {len(self._states)} subscriptions)"
