"""Publisher runtime: advertising and the event transformation boundary.

Publishers attach to the root ("published events are first forwarded to
the top most stage", §4).  Publishing performs the paper's event
transformation exactly once: the typed object is reflected into its
covering meta-data and sealed into an opaque envelope — after this point
no broker ever touches application code.
"""

from typing import Any, Iterable, Optional

from repro.core.advertisement import Advertisement
from repro.events.hierarchy import TypeRegistry
from repro.events.serialization import marshal
from repro.metrics.counters import NodeCounters
from repro.obs.tracing import PUBLISHER_STAGE, EventTracer
from repro.overlay.messages import Advertise, Publish, PublishBatch
from repro.sim.kernel import Process, Simulator
from repro.sim.network import Network


class PublisherRuntime(Process):
    """A data producer attached to the root of the hierarchy."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        root: Process,
        types: Optional[TypeRegistry] = None,
        tracer: Optional[EventTracer] = None,
    ):
        super().__init__(sim, name)
        self.network = network
        self.root = root
        self.types = types
        self.counters = NodeCounters()
        self.events_published = 0
        #: Causal span tracer (shared system-wide when observability is on).
        self.tracer = tracer if tracer is not None else EventTracer(enabled=False)

    def advertise(self, advertisement: Advertisement) -> None:
        """Disseminate an advertisement (schema + ``Gc``) into the overlay."""
        self.network.send(self, self.root, Advertise(advertisement))

    def publish(self, event: Any, event_class: Optional[str] = None) -> None:
        """Transform ``event`` (reflection -> meta-data + opaque payload)
        and inject it at the top stage.

        ``event_class`` overrides the meta-data type name; by default the
        type registry's registered name (when available) or the Python
        class name is used.
        """
        self.network.send(self, self.root, self._marshal(event, event_class))

    def publish_batch(
        self, events: Iterable[Any], event_class: Optional[str] = None
    ) -> int:
        """Publish a run of events as one batched injection.

        The whole run travels to the root in a single
        :class:`PublishBatch` message (one scheduling round, one receive)
        and is delivered downstream in publish order — the batched
        counterpart of calling :meth:`publish` per event.  Returns the
        number of events published.
        """
        publishes = tuple(self._marshal(event, event_class) for event in events)
        if not publishes:
            return 0
        if len(publishes) == 1:
            self.network.send(self, self.root, publishes[0])
        else:
            self.network.send(self, self.root, PublishBatch(publishes))
        return len(publishes)

    def _marshal(self, event: Any, event_class: Optional[str]) -> Publish:
        if event_class is None and self.types is not None:
            if self.types.is_registered(type(event)):
                event_class = self.types.name_of(type(event))
        envelope = marshal(
            event,
            class_name=event_class,
            published_at=self.sim.now,
            event_id=(self.name, self.events_published),
        )
        self.events_published += 1
        if self.tracer.enabled:
            self.tracer.span(
                self.sim.now,
                "publish",
                self.name,
                PUBLISHER_STAGE,
                trace_id=envelope.event_id,
                details=(
                    ("class", envelope.metadata.event_class),
                    ("to", self.root.name),
                ),
            )
        return Publish(envelope)

    def receive(self, message: Any, sender: Process) -> None:
        raise TypeError(f"publisher {self.name} received unexpected {message!r}")

    def __repr__(self) -> str:
        return f"PublisherRuntime({self.name}, published={self.events_published})"
