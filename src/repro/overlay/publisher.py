"""Publisher runtime: advertising and the event transformation boundary.

Publishers attach to the root ("published events are first forwarded to
the top most stage", §4).  Publishing performs the paper's event
transformation exactly once: the typed object is reflected into its
covering meta-data and sealed into an opaque envelope — after this point
no broker ever touches application code.
"""

from typing import Any, Optional

from repro.core.advertisement import Advertisement
from repro.events.hierarchy import TypeRegistry
from repro.events.serialization import marshal
from repro.metrics.counters import NodeCounters
from repro.overlay.messages import Advertise, Publish
from repro.sim.kernel import Process, Simulator
from repro.sim.network import Network


class PublisherRuntime(Process):
    """A data producer attached to the root of the hierarchy."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        root: Process,
        types: Optional[TypeRegistry] = None,
    ):
        super().__init__(sim, name)
        self.network = network
        self.root = root
        self.types = types
        self.counters = NodeCounters()
        self.events_published = 0

    def advertise(self, advertisement: Advertisement) -> None:
        """Disseminate an advertisement (schema + ``Gc``) into the overlay."""
        self.network.send(self, self.root, Advertise(advertisement))

    def publish(self, event: Any, event_class: Optional[str] = None) -> None:
        """Transform ``event`` (reflection -> meta-data + opaque payload)
        and inject it at the top stage.

        ``event_class`` overrides the meta-data type name; by default the
        type registry's registered name (when available) or the Python
        class name is used.
        """
        if event_class is None and self.types is not None:
            if self.types.is_registered(type(event)):
                event_class = self.types.name_of(type(event))
        envelope = marshal(
            event,
            class_name=event_class,
            published_at=self.sim.now,
            event_id=(self.name, self.events_published),
        )
        self.events_published += 1
        self.network.send(self, self.root, Publish(envelope))

    def receive(self, message: Any, sender: Process) -> None:
        raise TypeError(f"publisher {self.name} received unexpected {message!r}")

    def __repr__(self) -> str:
        return f"PublisherRuntime({self.name}, published={self.events_published})"
