"""Publisher runtime: advertising and the event transformation boundary.

Publishers attach to the root ("published events are first forwarded to
the top most stage", §4).  Publishing performs the paper's event
transformation exactly once: the typed object is reflected into its
covering meta-data and sealed into an opaque envelope — after this point
no broker ever touches application code.

With flow control on (a :class:`~repro.flow.FlowConfig`), the publisher
is the *source end* of the overlay's backpressure chain: each publish
spends one credit from a local window the root replenishes (one grant
per event it processes), an optional token bucket caps the offered rate
at the source, and credit-starved events wait in a bounded local queue
whose overflow is shed observably.  ``publish`` then reports whether the
event actually entered the system.
"""

from collections import deque
from typing import Any, Iterable, Optional

from repro.core.advertisement import Advertisement
from repro.events.hierarchy import TypeRegistry
from repro.events.serialization import marshal
from repro.flow import BoundedQueue, CreditWindow, FlowConfig, RateLimiter
from repro.metrics.counters import NodeCounters
from repro.obs.tracing import PUBLISHER_STAGE, EventTracer
from repro.overlay.channel import ReliableReceiver
from repro.overlay.messages import (
    Advertise,
    CreditGrant,
    DataFrame,
    Publish,
    PublishBatch,
    Sequenced,
)
from repro.runtime.base import Executor, Transport
from repro.sim.kernel import Process


class PublisherRuntime(Process):
    """A data producer attached to the root of the hierarchy."""

    def __init__(
        self,
        sim: Executor,
        network: Transport,
        name: str,
        root: Process,
        types: Optional[TypeRegistry] = None,
        tracer: Optional[EventTracer] = None,
        flow: Optional[FlowConfig] = None,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
    ):
        super().__init__(sim, name)
        self.network = network
        self.root = root
        self.types = types
        self.counters = NodeCounters()
        self.events_published = 0
        #: Causal span tracer (shared system-wide when observability is on).
        self.tracer = tracer if tracer is not None else EventTracer(enabled=False)
        #: Flow-control knobs (None = fire-and-forget legacy publishing).
        self.flow = flow
        #: Credits for the link to the root (replenished by root grants).
        self._window: Optional[CreditWindow] = (
            CreditWindow(flow.link_window) if flow is not None else None
        )
        #: Events waiting for credits (bounded; overflow sheds observably).
        self._pending: Optional[BoundedQueue] = (
            BoundedQueue(flow.publisher_queue_capacity, flow.policy)
            if flow is not None
            else None
        )
        effective_rate = rate_limit
        effective_burst = burst
        if flow is not None:
            if effective_rate is None:
                effective_rate = flow.publisher_rate
            if effective_burst is None:
                effective_burst = flow.publisher_burst
        #: Token bucket over simulated time (None = unlimited rate).
        self.rate_limiter: Optional[RateLimiter] = (
            RateLimiter(effective_rate, effective_burst or 16.0, now=sim.now)
            if effective_rate is not None
            else None
        )
        #: Reliable-channel receiver for the root's credit grants.
        self._grant_receiver = ReliableReceiver()
        #: Next data-frame sequence number on the link to the root (flow
        #: mode only): lets the root detect and re-credit events a lossy
        #: wire swallowed (the DESIGN §10 credit-leak fix).
        self._data_seq = 0

    def advertise(self, advertisement: Advertisement) -> None:
        """Disseminate an advertisement (schema + ``Gc``) into the overlay."""
        self.network.send(self, self.root, Advertise(advertisement))

    def publish(self, event: Any, event_class: Optional[str] = None) -> bool:
        """Transform ``event`` (reflection -> meta-data + opaque payload)
        and inject it at the top stage.

        ``event_class`` overrides the meta-data type name; by default the
        type registry's registered name (when available) or the Python
        class name is used.  Returns True when the event was sent or
        queued for sending, False when it was refused (rate limited, or
        shed from a full local queue) — always True without flow control.
        """
        if self.rate_limiter is not None and not self.rate_limiter.allow(self.sim.now):
            self.counters.rate_limited += 1
            if self.tracer.enabled:
                self.tracer.span(
                    self.sim.now,
                    "shed",
                    self.name,
                    PUBLISHER_STAGE,
                    details=(("reason", "rate-limit"),),
                )
            return False
        return self._submit(self._marshal(event, event_class))

    def publish_batch(
        self, events: Iterable[Any], event_class: Optional[str] = None
    ) -> int:
        """Publish a run of events as one batched injection.

        The whole run travels to the root in a single
        :class:`PublishBatch` message (one scheduling round, one receive)
        and is delivered downstream in publish order — the batched
        counterpart of calling :meth:`publish` per event.  Returns the
        number of events published (events refused by the rate limiter or
        shed from a full local queue do not count).
        """
        accepted = 0
        publishes = []
        for event in events:
            if self.rate_limiter is not None and not self.rate_limiter.allow(
                self.sim.now
            ):
                self.counters.rate_limited += 1
                continue
            publishes.append(self._marshal(event, event_class))
        if not publishes:
            return 0
        if self._window is None:
            if len(publishes) == 1:
                self.network.send(self, self.root, publishes[0])
            else:
                self.network.send(self, self.root, PublishBatch(tuple(publishes)))
            return len(publishes)
        for publish in publishes:
            if self._submit(publish):
                accepted += 1
        return accepted

    def _submit(self, message: Publish) -> bool:
        """Send one marshalled event, spending a credit; queue locally
        when the window is empty; shed when the local queue overflows."""
        if self._window is None:
            self.network.send(self, self.root, message)
            return True
        if not self._pending and self._window.take(1):
            self._send_data((message,))
            return True
        self.counters.credit_stalls += 1
        accepted, shed = self._pending.offer(message)
        if shed:
            self.counters.on_shed("publisher-overflow", len(shed))
            if self.tracer.enabled:
                for dropped in shed:
                    self.tracer.span(
                        self.sim.now,
                        "shed",
                        self.name,
                        PUBLISHER_STAGE,
                        trace_id=dropped.envelope.event_id,
                        details=(("reason", "publisher-overflow"),),
                    )
        return accepted

    @property
    def pending_count(self) -> int:
        """Events queued locally waiting for credits."""
        return len(self._pending) if self._pending is not None else 0

    def _marshal(self, event: Any, event_class: Optional[str]) -> Publish:
        if event_class is None and self.types is not None:
            if self.types.is_registered(type(event)):
                event_class = self.types.name_of(type(event))
        envelope = marshal(
            event,
            class_name=event_class,
            published_at=self.sim.now,
            event_id=(self.name, self.events_published),
        )
        self.events_published += 1
        if self.tracer.enabled:
            self.tracer.span(
                self.sim.now,
                "publish",
                self.name,
                PUBLISHER_STAGE,
                trace_id=envelope.event_id,
                details=(
                    ("class", envelope.metadata.event_class),
                    ("to", self.root.name),
                ),
            )
        return Publish(envelope)

    def receive(self, message: Any, sender: Process) -> None:
        # Credit grants from the root arrive on a reliable channel (so a
        # grant lost to the wire is retransmitted, never deadlocking the
        # loop); plain grants appear when the overlay runs with the
        # reliable channel ablated.  Handled regardless of this
        # publisher's own flow flag: absorbing an unexpected grant is
        # harmless, crashing on one is not.
        if isinstance(message, Sequenced):
            ack = self._grant_receiver.on_frame(
                message, lambda payload: self._apply_grant(payload)
            )
            self.network.send(self, sender, ack)
            return
        if isinstance(message, CreditGrant):
            self._apply_grant(message)
            return
        raise TypeError(f"publisher {self.name} received unexpected {message!r}")

    def _apply_grant(self, message: Any) -> None:
        if not isinstance(message, CreditGrant):
            raise TypeError(
                f"publisher {self.name} received unexpected framed {message!r}"
            )
        if self._window is None:
            return
        self._window.grant(message.credits)
        sendable = deque()
        while self._pending and self._window.take(1):
            sendable.append(self._pending.popleft())
        if sendable:
            self._send_data(tuple(sendable))

    def _send_data(self, publishes) -> None:
        """Put a run of credit-backed events on the wire as one sequenced
        data frame (the numbering is what makes lost-frame credit gaps
        detectable at the root)."""
        frame = DataFrame(self._data_seq, tuple(publishes))
        self._data_seq += len(frame.publishes)
        self.network.send(self, self.root, frame)

    def __repr__(self) -> str:
        return f"PublisherRuntime({self.name}, published={self.events_published})"
