"""Broker nodes: Figure 5(b) routing and Figure 6 forwarding.

A :class:`BrokerNode` sits at some stage ``s >= 1`` of the hierarchy.  It
keeps a filter table of ``<weakened filter, destination ids>`` entries
(destinations are child brokers, or subscribers for stage-1 and
wildcard-hosting nodes), an advertisement registry, and lease soft state.

Behaviour implemented here, with the paper's names:

- subscription routing (``Subscription(fsub)`` handling): redirect toward
  the strongest stored covering filter, handle wildcard subscriptions,
  or descend to a random child; insert at stage 1;
- ``INSERT-SUBSCRIBER`` / ``req-Insert``: store weakened filters and
  propagate further-weakened forms toward the root;
- covering-based subscription aggregation (the Definition 2 / Proposition
  1 trade): a per-class :class:`_UpLink` keeps a
  :class:`~repro.filters.covering_index.CoveringIndex` over the weakened
  forms, suppresses ``req-Insert`` when a propagated form already covers
  the new one, and on the death of a cover re-propagates its still-live
  covered forms *before* withdrawing it — the parent's table covers the
  union of the child's filters at every instant;
- ``HANDLE-WILDCARD-SUBS``: attach wildcard subscriptions at the stage
  just above the topmost stage using the wildcarded attribute;
- the TTL tasks (renew own filters at the parent, purge silent ones);
- event filtering and forwarding (Figure 6).
"""

import math
import pickle
import random
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.advertisement import AdvertisementRegistry
from repro.core.subscription import DEFAULT_EXPIRY_FACTOR, LeaseTable
from repro.events.base import CLASS_ATTRIBUTE, PropertyEvent
from repro.events.serialization import Envelope
from repro.core.weakening import merge_covering, weaken_filter
from repro.filters.covering_index import CoveringIndex
from repro.filters.engine import CachedMatchEngine, MatchEngine
from repro.filters.filter import Filter
from repro.filters.index import CountingIndex
from repro.filters.standard import most_general_wildcard, wildcard_attributes
from repro.flow import BoundedQueue, CreditWindow, FlowConfig, OverloadDetector
from repro.log.config import LogConfig
from repro.log.eventlog import EventLog
from repro.metrics.counters import NodeCounters
from repro.obs.tracing import EventTracer
from repro.overlay.channel import ReliableReceiver, ReliableSender
from repro.overlay.messages import (
    AcceptedAt,
    Ack,
    Advertise,
    CatchUpRequest,
    ChannelReset,
    CreditGrant,
    DataFrame,
    Disconnect,
    FlowInstall,
    FlowRemove,
    JoinAt,
    Publish,
    PublishBatch,
    Reconnect,
    Renewal,
    ReplayBatch,
    ReplayRequest,
    ReqInsert,
    Sequenced,
    SubscriptionRequest,
    Unsubscribe,
    Withdraw,
)
from repro.runtime.base import Executor, Transport
from repro.sim.kernel import Process
from repro.sim.trace import TraceRecorder
from repro.streams.operators import Emission, FlowRuntime
from repro.streams.spec import CollapseSpec

#: Renew halfway through the TTL ("before the expiry of each TTL").
RENEW_FRACTION = 0.5


class _UpLink:
    """Covering-aggregation state for one (node, event class) uplink.

    ``forms`` refcounts the stage-``s+1`` weakened *forms* of the filters
    stored locally (several stored filters can weaken to the same form);
    ``index`` holds the live forms for fast subsumption queries.  A live
    form is either *propagated* (sent to the parent via ``req-Insert``)
    or *suppressed* under exactly one propagated ``cover_of`` it is
    covered by; ``covered`` is the reverse map.  The propagated set is
    kept an antichain — maximal forms only — by demotion on insert and
    promotion (uncover re-propagation) on removal.

    All containers are insertion-ordered dicts, never plain sets of
    filters: iteration order feeds message emission, and ``str``-hash
    randomization must not leak into traces.
    """

    __slots__ = ("forms", "index", "propagated", "cover_of", "covered")

    def __init__(self) -> None:
        self.forms: Dict[Filter, int] = {}
        self.index = CoveringIndex()
        self.propagated: Dict[Filter, None] = {}
        self.cover_of: Dict[Filter, Filter] = {}
        self.covered: Dict[Filter, Dict[Filter, None]] = {}


class BrokerNode(Process):
    """One intermediate node of the multi-stage hierarchy."""

    #: Duck-typed broker marker.  Routing decisions that distinguish
    #: broker destinations from subscriber destinations check this flag
    #: rather than ``isinstance(..., BrokerNode)`` so that a *remote*
    #: broker's lightweight proxy (multiprocess backend, where the real
    #: node lives in another OS process) routes exactly like the node it
    #: stands in for.
    is_broker = True

    def __init__(
        self,
        sim: Executor,
        network: Transport,
        name: str,
        stage: int,
        ttl: float = 60.0,
        engine_factory: Callable[[], MatchEngine] = CountingIndex,
        rng: Optional[random.Random] = None,
        trace: Optional[TraceRecorder] = None,
        expiry_factor: float = DEFAULT_EXPIRY_FACTOR,
        wildcard_routing: bool = True,
        compact: bool = False,
        offline_buffer_limit: int = 1000,
        cache: bool = True,
        batch: bool = True,
        aggregate: bool = True,
        reliable: bool = True,
        tracer: Optional[EventTracer] = None,
        flow: Optional[FlowConfig] = None,
        service_rate: Optional[float] = None,
        service_batch: int = 16,
        log_config: Optional[LogConfig] = None,
    ):
        super().__init__(sim, name)
        if stage < 1:
            raise ValueError(f"broker stages start at 1, got {stage}")
        if service_rate is not None and service_rate <= 0:
            raise ValueError(f"service_rate must be positive, got {service_rate}")
        if service_batch < 1:
            raise ValueError(f"service_batch must be >= 1, got {service_batch}")
        self.network = network
        self.stage = stage
        self.ttl = ttl
        self.expiry_factor = expiry_factor
        self.parent: Optional["BrokerNode"] = None
        self.broker_children: List["BrokerNode"] = []
        self.leases = LeaseTable(ttl, expiry_factor)
        self.advertisements = AdvertisementRegistry()
        self.counters = NodeCounters()
        #: Routing-decision cache (per-node match memo) toggle.
        self.cache_enabled = cache
        #: Batched dispatch (runs of events per wakeup) toggle.
        self.batch_enabled = batch
        #: Covering-based subscription aggregation toggle (§4, Prop. 1).
        self.aggregate_enabled = aggregate
        #: Acked, sequence-numbered control channel toggle.
        self.reliable_enabled = reliable
        #: Per-event-class uplink aggregation state (empty at the root).
        self._uplinks: Dict[str, _UpLink] = {}
        # Reliable control channel state: one sender toward the parent
        # (the only order-sensitive direction), one receiver per framing
        # peer, and the highest ChannelReset incarnation seen per peer.
        # Both maps are keyed by the peer's *name* — the stable process
        # identity on this network (Network enforces uniqueness).  Keying
        # by id() would let a recycled object id silently inherit a dead
        # peer's channel state and discard its legitimate resets.
        self._up_sender: Optional[ReliableSender] = None
        self._receivers: Dict[str, ReliableReceiver] = {}
        self._peer_incarnations: Dict[str, int] = {}
        self._was_maintained = False
        self._engine_factory = engine_factory
        self.table: MatchEngine = self._new_engine()
        self.rng = rng or random.Random(0)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        #: Causal span tracer (shared system-wide; disabled tracer when
        #: observability is off, so every emission site is one flag check).
        self.tracer = tracer if tracer is not None else EventTracer(enabled=False)
        #: Whether HANDLE-WILDCARD-SUBS is active (ablation toggle, §4.4).
        self.wildcard_routing = wildcard_routing
        #: Whether the matching table is compacted with covering merges
        #: (the g1-covers-f1,f2 collapse of §4; ablation toggle).
        self.compact = compact
        self.offline_buffer_limit = offline_buffer_limit
        self._filter_class: Dict[Filter, str] = {}
        self._maintenance_handles: Dict[str, Any] = {}
        # Durable-subscription state (§2.1): offline destinations and the
        # events buffered for the durable ones.  Keyed by the destination
        # *name* — the stable identity on this network — not id(): a
        # recycled object id must not inherit a dead subscriber's offline
        # flag or durable buffer across a crash/reconnect cycle.
        self._offline: Dict[str, Tuple[Process, bool]] = {}
        self._buffers: Dict[str, Deque[Publish]] = {}
        # Compacted match engine, rebuilt lazily after table changes.
        self._compacted: Optional[MatchEngine] = None
        self._compacted_dirty = True
        # Batched dispatch: same-instant publishes queue here and drain in
        # one deferred wakeup (or earlier, if a control message arrives).
        self._publish_queue: Deque[Publish] = deque()
        self._drain_handle: Optional[Any] = None
        # Tracing sidecar for the publish queue: (sender name, arrival
        # time) per queued publish.  Only populated while the tracer is
        # enabled — the hot path never touches it otherwise.
        self._publish_meta: Deque[Tuple[str, float]] = deque()
        # ---- Flow control / overload protection (PR 5) -----------------
        #: Flow-control knobs (None = uncontrolled, the legacy data path).
        self.flow = flow
        #: Modelled processing capacity in events per simulated second
        #: (None = infinitely fast, the legacy zero-cost model).
        self.service_rate = service_rate
        self.service_batch = service_batch
        # Either knob moves event traffic onto the managed data path:
        # a bounded inbound queue drained by an explicit service loop.
        # Note the semantic difference from the legacy path: control
        # messages no longer flush queued events first (a finite-speed
        # broker cannot "catch up" instantaneously), so managed runs are
        # an opt-in, not a bit-identical superset of the legacy schedule.
        self._flow_managed = flow is not None or service_rate is not None
        self._inbound = BoundedQueue(
            flow.queue_capacity if flow is not None else None,
            flow.policy if flow is not None else "drop_tail",
            priority=self._entry_priority,
        )
        self._busy_until = 0.0
        self._drain_paused = False
        #: Events blocked waiting for downstream credits, per child name.
        self._outbound: Dict[str, BoundedQueue] = {}
        #: Sender-side credit window per downstream broker link.
        self._downlink_credits: Dict[str, CreditWindow] = {}
        #: Reliable channels carrying credit grants to publishers.
        self._credit_senders: Dict[str, ReliableSender] = {}
        #: Event sources (by name) we owe credit grants to.
        self._event_sources: Dict[str, Process] = {}
        # ---- Durable event log and replay (PR 6) -----------------------
        #: Log knobs (None = no log, the pre-log behaviour).
        self.log_config = log_config
        #: Append-only publish log; survives :meth:`crash` (durable).
        self.log: Optional[EventLog] = (
            EventLog(
                name,
                segment_size=log_config.segment_size,
                directory=log_config.directory,
            )
            if log_config is not None
            else None
        )
        #: Real-runtime crash semantics toggle: when True, :meth:`crash`
        #: closes and *drops* the in-memory log (it lived in the dead OS
        #: process) and :meth:`restart` reloads it from the on-disk JSONL
        #: segments.  Set by the engine for asyncio-backend systems with
        #: ``LogConfig.directory``; the sim default keeps the in-memory
        #: log across crashes (its durability model).
        self.recover_log_from_disk = False
        #: Root-side replayer, created lazily on the first replay request.
        self._replayer: Optional[Any] = None
        #: Next expected per-link data sequence number, per sender name
        #: (gap detection for the §10 credit-leak fix).
        self._data_expected: Dict[str, int] = {}
        #: Next outgoing data sequence number, per downstream peer name.
        self._data_seq_out: Dict[str, int] = {}
        self.overload_detector: Optional[OverloadDetector] = (
            OverloadDetector(
                flow.queue_capacity,
                alpha=flow.ewma_alpha,
                high=flow.overload_high,
                low=flow.overload_low,
                on_transition=self._on_overload_transition,
            )
            if flow is not None
            else None
        )
        # ---- In-broker information flows (streams/, DESIGN §15) --------
        #: Installed flows by name.  Soft state: crash() discards it and
        #: the registrar's renewals re-install (refresh-or-restore).
        self._flows: Dict[str, FlowRuntime] = {}
        #: Boundary-timer handles per flow (owned timers die with crash()).
        self._flow_timers: Dict[str, Any] = {}
        #: Next derived-event sequence number per flow name.  Survives
        #: crash() for the same reason the uplink sender's epoch counter
        #: does: the reserved publisher namespace (broker:flow, seq) must
        #: stay collision-free across incarnations, or idempotent
        #: downstream logs would silently swallow post-restart rollups.
        self._flow_seqs: Dict[str, int] = {}
        #: Re-entrancy depth of derived republication (chained flows);
        #: bounded so a mutually-recursive pair cannot livelock.
        self._flow_depth = 0

    def _new_engine(self) -> MatchEngine:
        """A fresh match engine, cache-wrapped when caching is on.

        The cache stats object is shared with this node's counters so
        hit/miss/invalidation totals survive compaction rebuilds (which
        construct a fresh wrapped engine each time).
        """
        engine = self._engine_factory()
        if self.cache_enabled:
            engine = CachedMatchEngine(engine, stats=self.counters.cache)
        return engine

    # ------------------------------------------------------------------
    # Topology wiring (done by hierarchy builder / engine)
    # ------------------------------------------------------------------

    def attach_child(self, child: "BrokerNode") -> None:
        """Register a child broker (one stage below) and link it."""
        if child.stage != self.stage - 1:
            raise ValueError(
                f"{child.name} (stage {child.stage}) cannot be a child of "
                f"{self.name} (stage {self.stage})"
            )
        child.parent = self
        self.broker_children.append(child)

    @property
    def is_root(self) -> bool:
        return self.parent is None

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def receive(self, message: Any, sender: Process) -> None:
        if isinstance(message, Publish):
            self._accept_publishes((message,), sender)
            return
        if isinstance(message, PublishBatch):
            self._accept_publishes(message.publishes, sender)
            return
        if isinstance(message, DataFrame):
            self._on_data_frame(message, sender)
            return
        if isinstance(message, Ack):
            # Acks touch only channel bookkeeping, never routing state:
            # no publish flush (batching must match the unreliable run)
            # and no control_messages count (they are overhead frames).
            # Acks from the parent belong to the uplink; acks from a
            # publisher belong to its credit-grant channel.
            if sender is not self.parent:
                credit_sender = self._credit_senders.get(sender.name)
                if credit_sender is not None:
                    credit_sender.on_ack(message)
                    return
            if self._up_sender is not None:
                self._up_sender.on_ack(message)
            return
        # Control messages mutate routing state; flush any queued events
        # first so the batch observes exactly the tables it would have
        # seen unbatched (arrival order is preserved bit-for-bit).
        self._flush_publishes()
        if isinstance(message, Sequenced):
            receiver = self._receivers.get(sender.name)
            if receiver is None:
                capacity = (
                    self.flow.control_window if self.flow is not None else None
                )
                receiver = self._receivers[sender.name] = ReliableReceiver(
                    capacity=capacity
                )
            before = receiver.dups_discarded
            epoch_before = receiver.epoch
            ack = receiver.on_frame(
                message, lambda payload: self._apply_control(payload, sender)
            )
            self.counters.control_dups_discarded += (
                receiver.dups_discarded - before
            )
            if (
                self.flow is not None
                and epoch_before is not None
                and receiver.epoch != epoch_before
            ):
                # The peer opened a new channel epoch without us seeing a
                # ChannelReset (the reset was lost to the wire): treat the
                # epoch adoption as the reset, so its credit window comes
                # back full instead of deadlocking on credits that died
                # with the old incarnation.
                self._reset_downlink(sender)
            self.network.send(self, sender, ack)
            return
        if isinstance(message, ChannelReset):
            self._on_channel_reset(message, sender)
            return
        self._apply_control(message, sender)

    def _apply_control(self, message: Any, sender: Process) -> None:
        """Apply one control message (unwrapped, in delivery order)."""
        self.counters.control_messages += 1
        if isinstance(message, SubscriptionRequest):
            self._on_subscription_request(message)
        elif isinstance(message, ReqInsert):
            self._on_req_insert(message)
        elif isinstance(message, Renewal):
            self._on_renewal(message, sender)
        elif isinstance(message, Advertise):
            self._on_advertise(message)
        elif isinstance(message, Unsubscribe):
            self._on_unsubscribe(message)
        elif isinstance(message, Withdraw):
            self._on_withdraw(message)
        elif isinstance(message, Disconnect):
            self._on_disconnect(message, sender)
        elif isinstance(message, Reconnect):
            self._on_reconnect(sender)
        elif isinstance(message, CreditGrant):
            self._on_credit_grant(message, sender)
        elif isinstance(message, CatchUpRequest):
            self._on_catch_up_request(message)
        elif isinstance(message, ReplayRequest):
            self._on_replay_request(message)
        elif isinstance(message, ReplayBatch):
            self._on_replay_batch(message, sender)
        elif isinstance(message, FlowInstall):
            self._on_flow_install(message, sender)
        elif isinstance(message, FlowRemove):
            self._remove_flow(message.flow, reason="removed")
        else:
            raise TypeError(f"{self.name}: unexpected message {message!r}")

    # ------------------------------------------------------------------
    # Advertisements
    # ------------------------------------------------------------------

    def _on_advertise(self, message: Advertise) -> None:
        changed = self.advertisements.add(message.advertisement)
        self.trace.record(
            self.sim.now, "advertise", self.name,
            event_class=message.advertisement.event_class, changed=changed,
        )
        if changed:
            for child in self.broker_children:
                self.network.send(self, child, message)

    def _association_for(self, event_class: str):
        return self.advertisements.require(event_class).association

    # ------------------------------------------------------------------
    # Subscription routing (Figure 5b)
    # ------------------------------------------------------------------

    def _on_subscription_request(self, request: SubscriptionRequest) -> None:
        if self.stage == 1:
            self._insert_subscriber(request)
            return

        redirect = self._strongest_covering_child(request.filter)
        if redirect is not None:
            self.trace.record(
                self.sim.now, "route-covering", self.name, target=redirect.name
            )
            self.network.send(
                self, request.subscriber, JoinAt(redirect, request.subscription_id)
            )
            return

        if self.wildcard_routing and self._has_schema_wildcards(request):
            self._handle_wildcard_subscription(request)
            return

        self._redirect_to_random_child(request)

    def _strongest_covering_child(self, fsub: Filter) -> Optional["BrokerNode"]:
        """The broker child associated with the strongest stored filter
        covering ``fsub`` (None when no such entry exists)."""
        best_filter: Optional[Filter] = None
        best_child: Optional[BrokerNode] = None
        for stored, ids in self.table.entries():
            if not stored.covers(fsub):
                continue
            child = next(
                (d for d in ids if getattr(d, "is_broker", False)), None
            )
            if child is None:
                continue
            if best_filter is None or (
                best_filter.covers(stored) and not stored.covers(best_filter)
            ):
                best_filter = stored
                best_child = child
        return best_child

    def _has_schema_wildcards(self, request: SubscriptionRequest) -> bool:
        advertisement = self.advertisements.get(request.event_class)
        if advertisement is None:
            return False
        schema = set(advertisement.schema)
        return any(
            attribute in schema for attribute in wildcard_attributes(request.filter)
        )

    def _handle_wildcard_subscription(self, request: SubscriptionRequest) -> None:
        """HANDLE-WILDCARD-SUBS (§4.5).

        The most general wildcarded attribute determines the target stage
        ``j + 1``; deeper wildcards (on the most general attribute itself)
        can push the target above the root, in which case the subscription
        clamps to the root — the subscriber effectively wants everything
        the root sees for that class.
        """
        advertisement = self.advertisements.require(request.event_class)
        attribute = most_general_wildcard(request.filter, advertisement.schema)
        top_used = advertisement.association.top_stage_using(attribute)
        target_stage = top_used + 1
        if self.stage == target_stage or (self.is_root and target_stage > self.stage):
            self.trace.record(
                self.sim.now, "wildcard-attach", self.name,
                attribute=attribute, target_stage=target_stage,
            )
            self._insert_subscriber(request)
        else:
            self._redirect_to_random_child(request)

    def _redirect_to_random_child(self, request: SubscriptionRequest) -> None:
        if not self.broker_children:
            # Malformed topology (an inner node without children): host the
            # subscriber rather than bounce the request forever.
            self._insert_subscriber(request)
            return
        child = self.rng.choice(self.broker_children)
        self.network.send(
            self, request.subscriber, JoinAt(child, request.subscription_id)
        )

    # ------------------------------------------------------------------
    # Filter insertion (INSERT-SUBSCRIBER / req-Insert)
    # ------------------------------------------------------------------

    def _insert_subscriber(self, request: SubscriptionRequest) -> None:
        association = self._association_for(request.event_class)
        stored = weaken_filter(request.filter, association, self.stage)
        newly_known = self._store(stored, request.subscriber, request.event_class)
        self.network.send(
            self,
            request.subscriber,
            AcceptedAt(self, request.subscription_id, stored),
        )
        self.trace.record(
            self.sim.now, "subscriber-insert", self.name,
            subscriber=request.subscriber.name, filter=str(stored),
        )
        if self.aggregate_enabled:
            if newly_known:
                self._up_insert(stored, request.event_class)
        else:
            self._propagate_up(request.filter, request.event_class)

    def _on_req_insert(self, message: ReqInsert) -> None:
        newly_known = self._store(message.filter, message.child, message.event_class)
        if not newly_known:
            return
        if self.aggregate_enabled:
            self._up_insert(message.filter, message.event_class)
        else:
            self._propagate_up(message.filter, message.event_class)

    def _store(self, filter_: Filter, destination: Process, event_class: str) -> bool:
        """Insert one pair; True when the *filter* was not stored before."""
        newly_known = filter_ not in self.table
        self.table.insert(filter_, destination)
        self.leases.touch(filter_, destination, self.sim.now)
        self._filter_class[filter_] = event_class
        self._table_changed()
        return newly_known

    def _propagate_up(self, filter_: Filter, event_class: str) -> None:
        """Send the next-stage weakening of ``filter_`` to the parent."""
        if self.parent is None:
            return
        association = self._association_for(event_class)
        weakened = weaken_filter(filter_, association, self.stage + 1)
        self.counters.req_inserts_sent += 1
        self._send_up(ReqInsert(weakened, event_class, self))

    def _on_renewal(self, message: Renewal, sender: Process) -> None:
        """Refresh-or-restore each renewed pair (see :class:`Renewal`)."""
        for filter_, event_class in message.items:
            newly_known = self._store(filter_, sender, event_class)
            if not newly_known:
                continue
            if self.aggregate_enabled:
                self._up_insert(filter_, event_class)
            else:
                self._propagate_up(filter_, event_class)

    def _on_unsubscribe(self, message: Unsubscribe) -> None:
        """Explicit unsubscription: ``message.filter`` is the *stored*
        (stage-weakened) filter the subscriber learned from accepted-At."""
        if self.table.remove(message.filter, message.subscriber):
            self.leases.forget(message.filter, message.subscriber)
            if message.filter not in self.table:
                self._filter_removed(message.filter)
            self._table_changed()

    def _on_withdraw(self, message: Withdraw) -> None:
        """A child retracted a propagated filter (covering aggregation)."""
        if self.table.remove(message.filter, message.child):
            self.leases.forget(message.filter, message.child)
            if message.filter not in self.table:
                self._filter_removed(message.filter)
            self._table_changed()

    # ------------------------------------------------------------------
    # Covering-based uplink aggregation (§4, Definition 2 / Proposition 1)
    # ------------------------------------------------------------------
    #
    # Soundness is free: a propagated cover is weaker than the forms it
    # suppresses, so the parent routes a superset of the needed events
    # (over-approximation, filtered exactly one stage below).  Complete-
    # ness is an ordering discipline: any replacement ``req-Insert`` is
    # sent *before* the ``Withdraw`` of the form it replaces, so at no
    # instant does the parent's table stop covering the union of this
    # node's stored filters.

    def _up_insert(self, stored: Filter, event_class: str) -> None:
        """A newly stored filter: refcount its weakened form; on the first
        occurrence either suppress it under a propagated cover or
        propagate it (demoting forms it strictly covers)."""
        if self.parent is None:
            return
        association = self._association_for(event_class)
        form = weaken_filter(stored, association, self.stage + 1)
        link = self._uplinks.get(event_class)
        if link is None:
            link = self._uplinks[event_class] = _UpLink()
        count = link.forms.get(form, 0)
        link.forms[form] = count + 1
        if count:
            return  # form already live: propagated or suppressed
        link.index.add(form)
        cover = next(
            (
                g
                for g in link.index.covered_by(form)
                if g != form and g in link.propagated
            ),
            None,
        )
        if cover is not None:
            link.cover_of[form] = cover
            link.covered.setdefault(cover, {})[form] = None
            self.counters.propagations_suppressed += 1
            self.trace.record(
                self.sim.now, "propagation-suppressed", self.name,
                filter=str(form), cover=str(cover),
            )
        else:
            self._propagate_form(link, form, event_class)
        self._uplinks_changed()

    def _propagate_form(self, link: _UpLink, form: Filter, event_class: str) -> None:
        """``req-Insert`` one form, then demote propagated forms it
        strictly covers (withdrawn only *after* the replacement is up)."""
        link.propagated[form] = None
        self.counters.req_inserts_sent += 1
        self._send_up(ReqInsert(form, event_class, self))
        for other in link.index.covers_of(form):
            if other == form or other not in link.propagated:
                continue
            if other.covers(form):
                continue  # equivalent, not strictly covered
            for child_form in link.covered.pop(other, {}):
                link.cover_of[child_form] = form
                link.covered.setdefault(form, {})[child_form] = None
            del link.propagated[other]
            link.cover_of[other] = form
            link.covered.setdefault(form, {})[other] = None
            self.counters.withdrawals_sent += 1
            self._send_up(Withdraw(other, event_class, self))
            self.trace.record(
                self.sim.now, "propagation-demoted", self.name,
                filter=str(other), cover=str(form),
            )

    def _filter_removed(self, filter_: Filter) -> None:
        """``filter_`` no longer has any destination in the table."""
        event_class = self._filter_class.pop(filter_, None)
        if event_class is not None and self.aggregate_enabled:
            self._up_remove(filter_, event_class)

    def _up_remove(self, stored: Filter, event_class: str) -> None:
        """Drop one refcount of the stored filter's weakened form; when the
        form dies, either detach it (suppressed) or run uncover
        re-propagation and withdraw it (propagated)."""
        if self.parent is None:
            return
        link = self._uplinks.get(event_class)
        if link is None:
            return
        association = self._association_for(event_class)
        form = weaken_filter(stored, association, self.stage + 1)
        count = link.forms.get(form)
        if count is None:
            return
        if count > 1:
            link.forms[form] = count - 1
            return
        del link.forms[form]
        link.index.discard(form)
        if form in link.propagated:
            self._form_removed(link, form, event_class)
        else:
            cover = link.cover_of.pop(form, None)
            if cover is not None:
                children = link.covered.get(cover)
                if children is not None:
                    children.pop(form, None)
                    if not children:
                        del link.covered[cover]
        self._uplinks_changed()

    def _form_removed(self, link: _UpLink, form: Filter, event_class: str) -> None:
        """Uncover re-propagation: re-home or re-propagate every form the
        dying cover suppressed, *then* withdraw the cover."""
        del link.propagated[form]
        orphans = list(link.covered.pop(form, {}))
        # Most-general first: an early promoted orphan can re-home the
        # rest, minimizing re-propagations.
        orphans.sort(key=lambda g: (len(g.constraints), str(g)))
        for orphan in orphans:
            link.cover_of.pop(orphan, None)
            new_cover = next(
                (
                    g
                    for g in link.index.covered_by(orphan)
                    if g != orphan and g in link.propagated
                ),
                None,
            )
            if new_cover is not None:
                link.cover_of[orphan] = new_cover
                link.covered.setdefault(new_cover, {})[orphan] = None
            else:
                self.counters.uncover_repropagations += 1
                self.trace.record(
                    self.sim.now, "uncover-repropagate", self.name,
                    filter=str(orphan), cover=str(form),
                )
                self._propagate_form(link, orphan, event_class)
        self.counters.withdrawals_sent += 1
        self._send_up(Withdraw(form, event_class, self))

    def _uplinks_changed(self) -> None:
        self.counters.propagated_filters = sum(
            len(link.propagated) for link in self._uplinks.values()
        )

    # ------------------------------------------------------------------
    # Reliable control channel (uplink) and crash recovery
    # ------------------------------------------------------------------
    #
    # The uplink is the order-sensitive direction: aggregation's "send
    # the replacement req-Insert before the Withdraw" discipline only
    # survives the wire if the parent applies the two in that order.
    # All req-Insert / Withdraw / Renewal traffic to the parent therefore
    # rides the acked, sequence-numbered channel (unless ``reliable`` is
    # off, the ablation baseline).

    def _send_up(self, payload: Any) -> None:
        """Send one control message to the parent (reliably when enabled)."""
        if self.parent is None:
            return
        if not self.reliable_enabled:
            self.network.send(self, self.parent, payload)
            return
        if self._up_sender is None:
            self._up_sender = ReliableSender(
                self.sim,
                self._send_up_raw,
                self._count_retransmits,
                observer=self._trace_retransmits,
                window=self.flow.control_window if self.flow is not None else None,
            )
        self._up_sender.send(payload)

    def _send_up_raw(self, frame: Sequenced) -> None:
        self.network.send(self, self.parent, frame)

    def _count_retransmits(self, frames: int) -> None:
        self.counters.control_retransmits += frames

    def _trace_retransmits(self, epoch: int, frames: Tuple[Sequenced, ...]) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.span(
            self.sim.now,
            "retransmit",
            self.name,
            self.stage,
            details=(
                ("peer", self.parent.name if self.parent is not None else "?"),
                ("epoch", epoch),
                ("frames", len(frames)),
                (
                    "payloads",
                    ",".join(type(f.payload).__name__ for f in frames),
                ),
            ),
        )

    @property
    def uplink_idle(self) -> bool:
        """True when every reliable uplink frame has been acknowledged
        (convergence probes use this to detect a quiesced control plane)."""
        return self._up_sender is None or self._up_sender.idle

    def _on_channel_reset(self, message: ChannelReset, sender: Process) -> None:
        """A neighbour restarted: drop its channel state; if it is our
        parent, refresh everything we had installed there right away."""
        known = self._peer_incarnations.get(sender.name)
        if known is not None and known >= message.incarnation:
            return  # duplicate / stale reset
        self._peer_incarnations[sender.name] = message.incarnation
        self._receivers.pop(sender.name, None)
        # The restarted peer restarts its data-frame numbering too.
        self._data_expected.pop(sender.name, None)
        if self._replayer is not None:
            self._replayer.on_peer_reset(sender.name)
        if self.flow is not None:
            # The peer's incarnation died with whatever credits it held:
            # reset-to-full (see flow.credits) rather than leak them.
            self._reset_downlink(sender)
            credit_sender = self._credit_senders.get(sender.name)
            if credit_sender is not None:
                credit_sender.reset()
        if self.tracer.enabled:
            self.tracer.span(
                self.sim.now,
                "channel-reset",
                self.name,
                self.stage,
                details=(
                    ("peer", sender.name),
                    ("incarnation", message.incarnation),
                ),
            )
        if sender is self.parent:
            if self._up_sender is not None:
                # Abandon in-flight frames (the parent forgot the channel
                # anyway) and open a fresh epoch.
                self._up_sender.reset()
                if self.tracer.enabled:
                    self.tracer.span(
                        self.sim.now,
                        "epoch-reset",
                        self.name,
                        self.stage,
                        details=(
                            ("peer", sender.name),
                            ("epoch", self._up_sender.epoch),
                        ),
                    )
            items = self._parent_renewal_items()
            if items:
                self._send_up(Renewal(tuple(items)))

    def crash(self) -> None:
        """Fail-stop: lose all soft state (§4.3's failure model).

        Tables, leases, aggregation state, channel receivers, durable
        buffers, and queued events vanish.  Advertisements survive —
        modelling a broker that re-reads the (rare, quasi-static)
        advertisement configuration from durable storage on restart;
        counters survive because they are measurement, not broker state.
        """
        super().crash()
        self._was_maintained = bool(self._maintenance_handles)
        self.stop_maintenance()
        self.table = self._new_engine()
        self.leases = LeaseTable(self.ttl, self.expiry_factor)
        self._uplinks.clear()
        self._uplinks_changed()
        self._filter_class.clear()
        self._offline.clear()
        self._buffers.clear()
        self._publish_queue.clear()
        self._publish_meta.clear()
        if self._drain_handle is not None:
            self._drain_handle.cancel()
            self._drain_handle = None
        self._compacted = None
        self._compacted_dirty = True
        self._receivers.clear()
        self._peer_incarnations.clear()
        self._inbound.clear()
        for queue in self._outbound.values():
            queue.clear()
        self._outbound.clear()
        self._downlink_credits.clear()
        self._event_sources.clear()
        self._data_expected.clear()
        self._data_seq_out.clear()
        # The event log is the one durable thing a broker owns: it
        # survives the crash (that is what recovery replays against).
        # Under real-runtime semantics only the *files* survive — the
        # in-memory object dies with the process and restart() reloads
        # it from disk.  Replay sessions are soft state and vanish.
        if self.recover_log_from_disk and self.log is not None:
            self.log.close()
            self.log = None
        if self._replayer is not None:
            self._replayer.reset()
        self._drain_paused = False
        self._busy_until = 0.0
        if self.overload_detector is not None:
            self.overload_detector.reset()
        # Information-flow operator state is soft state: open windows die
        # with the process.  Announce each one so the exactly-once audit
        # can excuse derived events the dropped windows will never emit
        # (DESIGN §15); the registrar's renewals re-install the flows.
        dropped = 0
        for runtime in self._flows.values():
            for group, window_start, pending in runtime.pending_windows():
                dropped += 1
                if self.tracer.enabled:
                    self.tracer.span(
                        self.sim.now,
                        "window-dropped",
                        self.name,
                        self.stage,
                        details=(
                            ("flow", runtime.spec.name),
                            ("group", group),
                            ("window_start", window_start),
                            ("pending", pending),
                            ("reason", "crash"),
                        ),
                    )
        self.counters.flow_windows_dropped += dropped
        self._flows.clear()
        self._flow_timers.clear()  # owned handles already cancelled above
        self._flow_depth = 0
        self.counters.flows_installed = 0
        if self._up_sender is not None:
            # The sender object persists so epochs stay monotonic across
            # restarts (a fresh object would reuse epoch 0 and be dropped
            # as stale by a parent that kept its receiver state); its
            # un-acked frames and timer are lost with the crash.
            self._up_sender.reset()
        for credit_sender in self._credit_senders.values():
            # Same epoch-monotonicity argument as the uplink sender.
            credit_sender.reset()

    def restart(self) -> None:
        """Come back up and rebuild from the neighbours' renewals.

        Tree neighbours get a :class:`ChannelReset`: broker children
        respond with an immediate full renewal (refresh-or-restore
        re-inserts every propagated form), which is what rebuilds this
        node's table without waiting out a renewal period.  Attached
        subscribers are unknown after the wipe — their periodic renewals
        restore their filters within one renewal interval.
        """
        super().restart()  # clears the gate and bumps self.incarnation
        if (
            self.recover_log_from_disk
            and self.log is None
            and self.log_config is not None
            and self.log_config.directory
        ):
            # Crash-recover the durable log from its JSONL segments (the
            # only copy under real-runtime semantics); reopen keeps the
            # tail segment appendable so this incarnation continues it.
            self.log = EventLog.load(
                self.name,
                self.log_config.directory,
                segment_size=self.log_config.segment_size,
                reopen=True,
            )
        reset = ChannelReset(self.incarnation)
        if self.parent is not None:
            self.network.send(self, self.parent, reset)
        for child in self.broker_children:
            self.network.send(self, child, reset)
        if self.parent is not None and self.parent.parent is not None:
            # The recovery replay below rides a reliable channel straight
            # to the root (a non-tree neighbour when the tree is deeper
            # than two stages).  A true fail-stop loses that channel's
            # epoch counter with the process, so the root must be told to
            # forget its receiver state too — otherwise every frame of
            # the fresh incarnation's epoch-0 channel reads as stale and
            # the replay request retransmits into the void forever.
            root = self
            while root.parent is not None:
                root = root.parent
            self.network.send(self, root, reset)
        if (
            self.log is not None
            and self.log_config.auto_recover
            and self.parent is not None
        ):
            # Let the children's reset-triggered renewals rebuild the
            # routing table first, then ask the root to re-drive what
            # was missed while down.
            self.call_later(
                self.log_config.recovery_delay, self._request_replay, self.incarnation
            )
        if self._was_maintained:
            self.start_maintenance()

    # ------------------------------------------------------------------
    # TTL maintenance (§4.3)
    # ------------------------------------------------------------------

    def start_maintenance(self) -> None:
        """Begin the periodic renewal and purge tasks."""
        self.stop_maintenance()
        renew_interval = self.ttl * RENEW_FRACTION
        self._maintenance_handles["renew"] = self.call_later(
            renew_interval, self._renew_task, renew_interval
        )
        self._maintenance_handles["purge"] = self.call_later(
            self.ttl, self._purge_task, self.ttl
        )

    def stop_maintenance(self) -> None:
        for handle in self._maintenance_handles.values():
            handle.cancel()
        self._maintenance_handles.clear()

    def _parent_renewal_items(self) -> Dict[Tuple[Filter, str], None]:
        """The ``(form, event_class)`` pairs a renewal to the parent
        carries (insertion-ordered, deduplicated)."""
        items: Dict[Tuple[Filter, str], None] = {}
        if self.aggregate_enabled:
            # Renewals piggyback only the maximal (propagated) forms:
            # suppressed forms have no lease upstream to keep alive.
            for event_class, link in self._uplinks.items():
                for form in link.propagated:
                    items[(form, event_class)] = None
        else:
            for filter_ in self.table.filters():
                event_class = self._filter_class.get(filter_)
                if event_class is None:
                    continue
                association = self._association_for(event_class)
                weakened = weaken_filter(filter_, association, self.stage + 1)
                items[(weakened, event_class)] = None
        return items

    def _renew_task(self, interval: float) -> None:
        """EXTEND THE VALIDITY OF FILTERS: renew own filters at the parent."""
        if self.parent is not None:
            items = self._parent_renewal_items()
            if items:
                self._send_up(Renewal(tuple(items)))
        self._maintenance_handles["renew"] = self.call_later(
            interval, self._renew_task, interval
        )

    def _purge_task(self, interval: float) -> None:
        """REMOVE INVALID FILTERS: drop pairs silent for 3xTTL."""
        # The purge mutates the table outside the message path: drain any
        # queued events first so they match against pre-purge state, as
        # they would have unbatched.
        self._flush_publishes()
        for filter_, destination in self.leases.expired(self.sim.now):
            removed = self.table.remove(filter_, destination)
            self.leases.forget(filter_, destination)
            if removed and filter_ not in self.table:
                self._filter_removed(filter_)
            self.trace.record(
                self.sim.now, "lease-expired", self.name,
                destination=getattr(destination, "name", destination),
            )
        for stale in [f for f in self._filter_class if f not in self.table]:
            self._filter_removed(stale)
        # Offline/buffer state for destinations that no longer hold any
        # lease here is garbage (the durable window closed with the lease).
        live_names = {destination.name for _, destination in self.leases.pairs()}
        for destination_name in list(self._offline):
            if destination_name not in live_names:
                del self._offline[destination_name]
                self._buffers.pop(destination_name, None)
        # Flow leases decay on the same clock as filter leases: a flow
        # whose registrar fell silent (crashed, removed, partitioned past
        # the expiry window) is dropped with its pending state.
        horizon = self.sim.now - self.ttl * self.expiry_factor
        for name in [
            n for n, r in self._flows.items() if r.renewed_at < horizon
        ]:
            self._remove_flow(name, reason="lease-expired")
        self._table_changed()
        self._maintenance_handles["purge"] = self.call_later(
            interval, self._purge_task, interval
        )

    # ------------------------------------------------------------------
    # In-broker information flows (streams/, DESIGN §15)
    # ------------------------------------------------------------------

    def _on_flow_install(self, message: FlowInstall, sender: Process) -> None:
        spec = message.spec
        now = self.sim.now
        runtime = self._flows.get(spec.name)
        if runtime is not None and runtime.spec == spec:
            # Refresh-or-restore: an identical spec is a pure lease renewal.
            runtime.renewed_at = now
            return
        if runtime is not None:
            # Changed definition: replace the machine, dropping its state.
            self._cancel_flow_timer(spec.name)
        runtime = self._flows[spec.name] = FlowRuntime(spec, now)
        if spec.name not in self._flow_seqs:
            # First install on this incarnation chain: start the derived
            # sequence above anything ever logged under the flow's
            # namespace, so a process death that lost the in-memory
            # counter (asyncio backend) cannot reuse ids the idempotent
            # downstream logs would silently swallow.
            self._flow_seqs[spec.name] = self._flow_seq_floor(spec.name)
        self.counters.flows_installed = len(self._flows)
        if self.tracer.enabled:
            self.tracer.span(
                now,
                "flow-install",
                self.name,
                self.stage,
                details=(
                    ("flow", spec.name),
                    ("operator", spec.operator_kind),
                    ("out", spec.output_class),
                    ("from", sender.name),
                ),
            )

    def _flow_seq_floor(self, flow_name: str) -> int:
        if self.log is None:
            return 0
        return self.log.watermarks().get(f"{self.name}:{flow_name}", -1) + 1

    def _remove_flow(self, flow_name: str, reason: str) -> None:
        runtime = self._flows.pop(flow_name, None)
        if runtime is None:
            return
        self._cancel_flow_timer(flow_name)
        self.counters.flows_installed = len(self._flows)
        if self.tracer.enabled:
            self.tracer.span(
                self.sim.now,
                "flow-remove",
                self.name,
                self.stage,
                details=(("flow", flow_name), ("reason", reason)),
            )

    def _cancel_flow_timer(self, flow_name: str) -> None:
        handle = self._flow_timers.pop(flow_name, None)
        if handle is not None:
            handle.cancel()

    def _arm_flow_timer(self, runtime: FlowRuntime) -> None:
        """Arm the flow's next boundary timer (idempotent).

        Timers are **lazy**: armed when the operator takes on pending
        state and not re-armed once it runs dry, so an idle flow leaves
        the simulator's event queue empty and ``drain()`` terminates.
        Window boundaries align at multiples of the period anchored at
        t=0: firing times are a function of the clock alone, so
        same-seed runs fire identically regardless of install time.
        """
        period = runtime.timer_period()
        if period is None or runtime.spec.name in self._flow_timers:
            return
        next_fire = (math.floor(self.sim.now / period) + 1) * period
        self._flow_timers[runtime.spec.name] = self.call_at(
            next_fire, self._on_flow_timer, runtime.spec.name
        )

    def _on_flow_timer(self, flow_name: str) -> None:
        runtime = self._flows.get(flow_name)
        self._flow_timers.pop(flow_name, None)
        if runtime is None:
            return
        # Re-arm before emitting (an emission that crashes this broker
        # mid-instant must not also lose the timer chain) — but only
        # while state is still pending, to stay quiescent when idle.
        emissions = runtime.on_timer(self.sim.now)
        if runtime.pending_windows():
            self._arm_flow_timer(runtime)
        if emissions:
            self._emit_derived(runtime, emissions)

    def _feed_flows(self, batch: Sequence[Publish]) -> None:
        """Feed a just-forwarded batch to the installed flows.

        Chained flows compose because the derived batch re-enters
        :meth:`_process_batch` and is tapped again; the depth guard
        bounds mutually-recursive graphs, and a flow never consumes its
        own output (events from its reserved namespace are skipped).
        """
        if self._flow_depth >= 8:
            return
        now = self.sim.now
        for runtime in list(self._flows.values()):
            own_namespace = f"{self.name}:{runtime.spec.name}"
            emissions: List[Emission] = []
            fed = 0
            for message in batch:
                envelope = message.envelope
                event_id = envelope.event_id
                if event_id is not None and event_id[0] == own_namespace:
                    continue
                if not runtime.matches(envelope.metadata):
                    continue
                fed += 1
                emissions.extend(
                    runtime.on_event(envelope.metadata, now, event_id)
                )
            if fed:
                self.counters.flow_events_in += fed
                self._arm_flow_timer(runtime)
            if emissions:
                self._emit_derived(runtime, emissions)

    def _emit_derived(
        self, runtime: FlowRuntime, emissions: Sequence[Emission]
    ) -> None:
        """Republish operator output into the normal publish path.

        Derived events get ids under the reserved publisher namespace
        ``(broker:flow, seq)`` and re-enter :meth:`_process_batch` at
        this broker, so they are matched, covered, credit-paced, logged,
        and traced exactly like events from a real publisher — with this
        broker in the publisher role: a ``publish`` span anchors path
        reconstruction here, and ``events_published`` counts once, at
        the deriving broker only.
        """
        spec = runtime.spec
        namespace = f"{self.name}:{spec.name}"
        now = self.sim.now
        tracing = self.tracer.enabled
        collapse = isinstance(spec.operator, CollapseSpec)
        publishes: List[Publish] = []
        for emission in emissions:
            seq = self._flow_seqs.get(spec.name, 0)
            self._flow_seqs[spec.name] = seq + 1
            props = dict(emission.properties)
            props[CLASS_ATTRIBUTE] = spec.output_class
            envelope = Envelope(
                PropertyEvent(props),
                pickle.dumps(props),
                published_at=now,
                event_id=(namespace, seq),
            )
            publishes.append(Publish(envelope))
            self.counters.events_published += 1
            self.counters.flow_events_out += 1
            if collapse and emission.n_inputs > 1:
                self.counters.flow_collapsed_events += emission.n_inputs - 1
            if tracing:
                ids = ",".join(f"{p}/{s}" for p, s in emission.inputs)
                if emission.n_inputs > len(emission.inputs):
                    ids += f",+{emission.n_inputs - len(emission.inputs)}"
                self.tracer.span(
                    now,
                    "publish",
                    self.name,
                    self.stage,
                    trace_id=envelope.event_id,
                    details=(("class", spec.output_class), ("flow", spec.name)),
                )
                self.tracer.span(
                    now,
                    "derive",
                    self.name,
                    self.stage,
                    trace_id=envelope.event_id,
                    details=(
                        ("flow", spec.name),
                        ("op", spec.operator_kind),
                        ("inputs", emission.n_inputs),
                        ("input_ids", ids),
                    ),
                )
        metas = None
        if tracing:
            metas = tuple((namespace, now) for _ in publishes)
        self._flow_depth += 1
        try:
            self._process_batch(tuple(publishes), metas)
        finally:
            self._flow_depth -= 1

    def flows(self) -> Tuple[str, ...]:
        """Names of the currently installed flows (introspection)."""
        return tuple(self._flows)

    # ------------------------------------------------------------------
    # Durable subscriptions (§2.1)
    # ------------------------------------------------------------------

    def _on_disconnect(self, message: Disconnect, sender: Process) -> None:
        self._offline[sender.name] = (sender, message.durable)
        if message.durable:
            self._buffers.setdefault(sender.name, deque())
        self.trace.record(
            self.sim.now, "disconnect", self.name,
            subscriber=sender.name, durable=message.durable,
        )

    def _on_reconnect(self, sender: Process) -> None:
        self._offline.pop(sender.name, None)
        buffered = self._buffers.pop(sender.name, ())
        for publish in buffered:
            self.network.send(self, sender, publish)
        self.trace.record(
            self.sim.now, "reconnect", self.name,
            subscriber=sender.name, replayed=len(buffered),
        )

    def _buffer_durable(self, destination: Process, message: Publish) -> None:
        """Buffer one event for an offline durable subscriber, shedding
        the oldest buffered event (observably — counter + span) when the
        buffer is over its limit."""
        buffer = self._buffers[destination.name]
        buffer.append(message)
        if len(buffer) > self.offline_buffer_limit:
            dropped = buffer.popleft()
            self._shed_offline(destination.name, dropped)

    # ------------------------------------------------------------------
    # Table compaction (covering merges, §4)
    # ------------------------------------------------------------------

    def _table_changed(self) -> None:
        self._compacted_dirty = True
        if not self.compact:
            self.counters.set_filters_held(len(self.table))

    def _match_engine(self) -> MatchEngine:
        """The engine events are matched against.

        Without compaction this is the authoritative table.  With
        compaction, filters sharing an identical destination set are
        merged into covering filters (Example 5's g1 over f1/f2): fewer,
        weaker filters — sound because every original is covered, and
        exact again one stage below.  Leases and upward propagation keep
        using the authoritative table.
        """
        if not self.compact:
            return self.table
        if self._compacted_dirty or self._compacted is None:
            # A rebuild discards the previous compacted engine together
            # with its memoized decisions: account the flush.
            if (
                isinstance(self._compacted, CachedMatchEngine)
                and self._compacted.cached_decisions()
            ):
                self.counters.cache.invalidations += 1
            groups: Dict[Tuple[int, ...], Tuple[List[Filter], Tuple]] = {}
            for filter_, ids in self.table.entries():
                key = tuple(sorted(id(destination) for destination in ids))
                group = groups.setdefault(key, ([], ids))
                group[0].append(filter_)
            compacted = self._new_engine()
            for filters, ids in groups.values():
                for merged in merge_covering(filters):
                    for destination in ids:
                        compacted.insert(merged, destination)
            self._compacted = compacted
            self._compacted_dirty = False
            self.counters.set_filters_held(len(compacted))
        return self._compacted

    # ------------------------------------------------------------------
    # Event filtering and forwarding (Figure 6, batched)
    # ------------------------------------------------------------------

    def _accept_publishes(self, publishes: Sequence[Publish], sender: Process) -> None:
        """Entry point for event traffic (single messages or batches).

        With batching on, publishes queue up and a single drain wakeup —
        deferred to the end of the current instant — processes the whole
        run; control messages arriving in between flush the queue first,
        so processing order is identical to the unbatched schedule.

        With flow control or a service rate configured, admission instead
        goes through the bounded inbound queue and the managed service
        loop (see the flow-control section below).
        """
        if self._flow_managed:
            self._accept_managed(publishes, sender)
            return
        if not self.batch_enabled:
            metas = None
            if self.tracer.enabled:
                metas = tuple((sender.name, self.sim.now) for _ in publishes)
            self._process_batch(tuple(publishes), metas)
            return
        self._publish_queue.extend(publishes)
        if self.tracer.enabled:
            now = self.sim.now
            self._publish_meta.extend((sender.name, now) for _ in publishes)
        if self._drain_handle is None:
            self._drain_handle = self.call_soon(self._drain_publishes)

    def _drain_publishes(self) -> None:
        self._drain_handle = None
        self._flush_publishes()

    def _flush_publishes(self) -> None:
        if self._flow_managed:
            # Managed mode: events wait in the bounded inbound queue for
            # the service loop; control messages cannot flush them early
            # (a finite-speed broker has no instantaneous catch-up).
            return
        if not self._publish_queue:
            return
        batch = tuple(self._publish_queue)
        self._publish_queue.clear()
        metas = None
        if self._publish_meta:
            metas = tuple(self._publish_meta)
            self._publish_meta.clear()
        self._process_batch(batch, metas)

    def _process_batch(
        self,
        batch: Sequence[Publish],
        metas: Optional[Sequence[Tuple[str, float]]] = None,
    ) -> None:
        """Match and forward a run of events in one wakeup.

        Events bound for the same destination coalesce into a single
        :class:`PublishBatch` send (one scheduling round downstream);
        per-destination event order is the batch order, i.e. exactly the
        unbatched delivery order.  ``metas`` carries per-event ``(sender
        name, arrival time)`` when tracing is on.
        """
        self.counters.on_batch(len(batch))
        if self.log is not None:
            batch = self._log_batch(batch)
            if self._replayer is not None and self._replayer.has_catch_up:
                self._replayer.tap_batch(batch)
        engine = self._match_engine()
        tracing = self.tracer.enabled
        raw = engine.inner if isinstance(engine, CachedMatchEngine) else engine
        # Whole-batch evaluation when the underlying engine has a native
        # match_batch (the compiled bitmap engine): one dirty recompile
        # and one structure pass for the entire run.  The tracing path
        # keeps per-event match calls so each hop span can report its own
        # probe delta and cache verdict — results are identical.
        use_batch = (
            not tracing
            and len(batch) > 1
            and type(raw).match_batch is not MatchEngine.match_batch
        )
        all_matches = None
        if use_batch:
            probes_before = engine.evaluations
            rebuilds_before = getattr(raw, "rebuilds", 0)
            residual_before = getattr(raw, "residual_evaluations", 0)
            all_matches = engine.match_batch(
                tuple(message.envelope.metadata for message in batch)
            )
            # Per-event on_event() calls below pass evaluations=0; the
            # whole run's probe delta lands here once, so the totals are
            # identical to the per-event accounting.
            self.counters.filter_evaluations += engine.evaluations - probes_before
            self.counters.events_matched_batch += len(batch)
            self.counters.compile_rebuilds += (
                getattr(raw, "rebuilds", 0) - rebuilds_before
            )
            self.counters.residual_evaluations += (
                getattr(raw, "residual_evaluations", 0) - residual_before
            )
        runs: Dict[int, List[Publish]] = {}
        run_order: List[Process] = []
        for position, message in enumerate(batch):
            if all_matches is not None:
                matches = all_matches[position]
                probes_delta = 0
            else:
                probes_before = engine.evaluations
                hits_before = self.counters.cache.hits if tracing else 0
                matches = engine.match(message.envelope.metadata)
                probes_delta = engine.evaluations - probes_before
            destinations: List[Process] = []
            seen = set()
            for _, ids in matches:
                for destination in ids:
                    if id(destination) not in seen:
                        seen.add(id(destination))
                        destinations.append(destination)
            self.counters.on_event(
                matched=bool(matches),
                forwarded_to=len(destinations),
                evaluations=probes_delta,
            )
            if tracing:
                if metas is not None and position < len(metas):
                    src, arrived = metas[position]
                else:
                    src, arrived = "?", self.sim.now
                if not self.cache_enabled:
                    cache = "off"
                elif self.counters.cache.hits > hits_before:
                    cache = "hit"
                else:
                    cache = "miss"
                self.tracer.span(
                    self.sim.now,
                    "hop",
                    self.name,
                    self.stage,
                    trace_id=message.envelope.event_id,
                    details=(
                        ("src", src),
                        ("cache", cache),
                        ("probed", probes_delta),
                        ("matched", bool(matches)),
                        ("fanout", len(destinations)),
                        ("defer", self.sim.now - arrived),
                    ),
                )
            for destination in destinations:
                offline = self._offline.get(destination.name)
                if offline is not None:
                    _, durable = offline
                    if durable:
                        self._buffer_durable(destination, message)
                    continue
                run = runs.get(id(destination))
                if run is None:
                    run = runs[id(destination)] = []
                    run_order.append(destination)
                run.append(message)
        for destination in run_order:
            run = runs[id(destination)]
            if self.flow is not None and getattr(destination, "is_broker", False):
                self._forward_controlled(destination, run)
            else:
                self._send_run(destination, run)
        # Information flows tap the batch *after* the raw path has fully
        # forwarded it: subscribers not behind a flow see byte-identical
        # schedules whether or not any flow is installed here.
        if self._flows:
            self._feed_flows(batch)

    def _send_run(self, destination: Process, run: Sequence[Publish]) -> None:
        if self.flow is not None and getattr(destination, "is_broker", False):
            # Data frames carry a per-link sequence number so the child
            # can detect (and re-credit) events a lossy link swallowed.
            seq = self._data_seq_out.get(destination.name, 0)
            self._data_seq_out[destination.name] = seq + len(run)
            self.network.send(self, destination, DataFrame(seq, tuple(run)))
            return
        if len(run) == 1:
            self.network.send(self, destination, run[0])
        else:
            self.network.send(self, destination, PublishBatch(tuple(run)))

    # ------------------------------------------------------------------
    # Durable event log, replay, and crash recovery (see repro.log)
    # ------------------------------------------------------------------

    def _log_batch(self, batch: Sequence[Publish]) -> Sequence[Publish]:
        """Append a run to the event log (idempotent per event id).

        At the root, each first-seen event gets its log offset stamped
        into the forwarded :class:`Publish`, so the same root offset
        travels unchanged to every downstream log (``source_offset``) —
        the coordinate system recovery replay is phrased in.
        """
        log = self.log
        stamped: List[Publish] = []
        changed = False
        for message in batch:
            before = log.next_offset
            record = log.append(
                message.envelope, self.sim.now, source_offset=message.offset
            )
            if log.next_offset != before:
                self.counters.events_logged += 1
            if self.is_root and message.offset is None:
                message = Publish(message.envelope, record.offset)
                changed = True
            stamped.append(message)
        return tuple(stamped) if changed else batch

    def _ensure_replayer(self):
        if self._replayer is None:
            from repro.log.replay import Replayer

            self._replayer = Replayer(self)
        return self._replayer

    def _on_catch_up_request(self, message: CatchUpRequest) -> None:
        if self.log is None:
            return  # no log configured: nothing to replay
        self._ensure_replayer().start_catch_up(message)

    def _on_replay_request(self, message: ReplayRequest) -> None:
        if self.log is None:
            return
        self._ensure_replayer().start_recovery(message)

    def _on_replay_batch(self, message: ReplayBatch, sender: Process) -> None:
        """Recovery replay arriving at a restarted broker: drop what the
        surviving log already has, process the rest normally (matched,
        logged, forwarded — the missed-while-down events reach this
        subtree's subscribers through the regular path)."""
        fresh: List[Publish] = []
        dropped = 0
        for publish in message.publishes:
            eid = publish.envelope.event_id
            if self.log is not None and eid is not None and self.log.seen(eid):
                dropped += 1
                continue
            fresh.append(publish)
        if dropped:
            self.counters.replay_dupes_discarded += dropped
            if self.flow is not None:
                # The sender spent window credits on the dropped events;
                # they will never be processed, so return their credits
                # here (processing grants back only for accepted ones).
                self._event_sources[sender.name] = sender
                self._grant_credits(sender.name, dropped)
        if fresh:
            self._accept_publishes(tuple(fresh), sender)

    def _request_replay(self, incarnation: int) -> None:
        """Ask the root to re-drive events missed while down (scheduled
        ``recovery_delay`` after restart, once renewals rebuilt the
        table the replay is matched against)."""
        if self.crashed or incarnation != self.incarnation or self.log is None:
            return
        root = self
        while root.parent is not None:
            root = root.parent
        if root is self:
            return
        from_offset = -1
        if self.log.max_source_offset is not None:
            from_offset = max(
                -1, self.log.max_source_offset - self.log_config.recovery_rewind
            )
        if self.tracer.enabled:
            self.tracer.span(
                self.sim.now,
                "replay-request",
                self.name,
                self.stage,
                details=(("root", root.name), ("from_offset", from_offset)),
            )
        payload = ReplayRequest(self, from_offset)
        if self.parent is root:
            # Ride the existing uplink channel (one Sequenced stream per
            # sender/receiver pair; a second would collide with it).
            self._send_up(payload)
        else:
            self._send_peer(root, payload)

    # ------------------------------------------------------------------
    # Gap-granting data frames (DESIGN §10 credit-leak fix)
    # ------------------------------------------------------------------

    def _on_data_frame(self, frame: DataFrame, sender: Process) -> None:
        """Admit a sequenced data frame, re-crediting any gap.

        ``frame.seq`` numbers the first contained event on this link; a
        jump past the expected number means a lossy link swallowed
        frames whose events had spent sender-side credits.  Granting the
        missing count back (capped at one window — the most that can be
        in flight) stops the §10 permanent window shrink.  The first
        frame from an unknown sender adopts its position silently: any
        earlier losses are unknowable.
        """
        if self.flow is not None:
            expected = self._data_expected.get(sender.name)
            if expected is not None and frame.seq > expected:
                missing = min(frame.seq - expected, self.flow.link_window)
                if self.flow.gap_grant:
                    self.counters.credit_gap_grants += missing
                    self._event_sources[sender.name] = sender
                    if self.tracer.enabled:
                        self.tracer.span(
                            self.sim.now,
                            "credit-gap",
                            self.name,
                            self.stage,
                            details=(
                                ("peer", sender.name),
                                ("missing", missing),
                            ),
                        )
                    self._grant_credits(sender.name, missing)
            advance = frame.seq + len(frame.publishes)
            if expected is None or advance > expected:
                self._data_expected[sender.name] = advance
        self._accept_publishes(frame.publishes, sender)

    # ------------------------------------------------------------------
    # Flow control, backpressure, and overload protection (see repro.flow)
    # ------------------------------------------------------------------
    #
    # Managed data path: arriving events are admitted into a bounded
    # inbound queue and drained by an explicit service loop (modelling a
    # finite-speed broker when ``service_rate`` is set).  With ``flow``
    # set, three credit loops bound every queue in the system:
    #
    # - upstream grants: this node grants one credit per *processed* (or
    #   shed) event back to the event's source — to the parent over the
    #   existing reliable uplink, to publishers over a dedicated reliable
    #   channel — so a source's in-flight + queued-here events never
    #   exceed its link window;
    # - downstream spending: forwarding to a broker child spends one
    #   credit from that child's window; when the window is empty the
    #   events queue in a bounded per-link outbound queue, and a
    #   non-empty outbound queue pauses the whole drain (head-of-line
    #   backpressure: a slow stage-2 broker stalls its parent, the
    #   parent's inbound fills, its grants dry up, and the stall
    #   propagates hop-by-hop to the publishers);
    # - overload shedding: the queue-depth EWMA detector (fed by the
    #   sampler tick) shrinks the effective inbound capacity while
    #   OVERLOADED, turning sustained saturation into bounded-latency
    #   shedding instead of unbounded queueing.

    def queue_depth(self) -> int:
        """Events queued at this broker (inbound + outbound + legacy
        publish queue) — the public accessor the sampler and overload
        detector observe."""
        depth = len(self._publish_queue) + len(self._inbound)
        for queue in self._outbound.values():
            depth += len(queue)
        return depth

    def _accept_managed(self, publishes: Sequence[Publish], sender: Process) -> None:
        """Admit arriving events into the bounded inbound queue."""
        now = self.sim.now
        source = sender.name
        self._event_sources[source] = sender
        capacity = None
        if (
            self.overload_detector is not None
            and self.overload_detector.overloaded
        ):
            capacity = max(
                1, int(self.flow.queue_capacity * self.flow.overload_capacity_factor)
            )
        shed_entries: List[Tuple[Publish, str, float]] = []
        for publish in publishes:
            accepted, shed = self._inbound.offer((publish, source, now), capacity)
            shed_entries.extend(shed)
        if shed_entries:
            self._shed_entries(shed_entries, "queue-overflow")
        self._schedule_managed_drain()

    def _entry_priority(self, entry: Tuple[Publish, str, float]) -> float:
        return self._shed_priority(entry[0])

    def _shed_priority(self, publish: Publish) -> float:
        """Selectivity estimate for ``priority_by_selectivity`` shedding:
        the refcount-weighted number of uplink forms the event matches —
        the covering index's view of how many stored subscriptions the
        event is likely to reach.  Higher reach = kept longer."""
        metadata = publish.envelope.metadata
        link = self._uplinks.get(metadata.event_class)
        if link is None:
            return 0.0
        return float(
            sum(count for form, count in link.forms.items() if form.matches(metadata))
        )

    def _schedule_managed_drain(self) -> None:
        if self._drain_handle is not None or self._drain_paused:
            return
        if not self._inbound:
            return
        if self.service_rate is None:
            self._drain_handle = self.call_soon(self._drain_managed)
        else:
            self._drain_handle = self.call_at(
                max(self.sim.now, self._busy_until), self._drain_managed
            )

    def _drain_managed(self) -> None:
        self._drain_handle = None
        if self._outbound_blocked():
            # Head-of-line backpressure: a credit-starved downstream link
            # pauses the whole service loop until grants arrive.
            self._drain_paused = True
            return
        if not self._inbound:
            return
        if self.service_rate is None:
            count = len(self._inbound)
        else:
            count = min(self.service_batch, len(self._inbound))
        entries = [self._inbound.popleft() for _ in range(count)]
        batch = tuple(entry[0] for entry in entries)
        metas = None
        if self.tracer.enabled:
            metas = tuple((entry[1], entry[2]) for entry in entries)
        self._process_batch(batch, metas)
        if self.service_rate is not None:
            self._busy_until = self.sim.now + count / self.service_rate
        if self.flow is not None:
            self._grant_for_entries(entries)
        if self._outbound_blocked():
            self._drain_paused = True
            return
        self._schedule_managed_drain()

    def _outbound_blocked(self) -> bool:
        return any(len(queue) for queue in self._outbound.values())

    def _maybe_resume_drain(self) -> None:
        if self._drain_paused and not self._outbound_blocked():
            self._drain_paused = False
            self._schedule_managed_drain()

    # -- upstream credit grants ----------------------------------------

    def _grant_for_entries(self, entries: Sequence[Tuple[Publish, str, float]]) -> None:
        """Grant one credit per drained entry back to its source
        (insertion-ordered grouping keeps grant emission deterministic)."""
        per_source: Dict[str, int] = {}
        for _, source, _ in entries:
            per_source[source] = per_source.get(source, 0) + 1
        for source, count in per_source.items():
            self._grant_credits(source, count)

    def _grant_credits(self, source: str, count: int) -> None:
        self.counters.credits_granted += count
        if self.tracer.enabled:
            self.tracer.span(
                self.sim.now,
                "credit-grant",
                self.name,
                self.stage,
                details=(("peer", source), ("credits", count)),
            )
        if self.parent is not None and source == self.parent.name:
            # Child-to-parent grants ride the existing reliable uplink.
            self._send_up(CreditGrant(count))
            return
        target = self._event_sources.get(source)
        if target is None:
            return
        self._send_peer(target, CreditGrant(count))

    def _peer_sender(self, target: Process) -> ReliableSender:
        """The reliable channel toward an arbitrary peer (publisher
        credit grants, catch-up streams, recovery replay).  One channel
        per peer: acks from ``target`` route back to it by name."""
        sender = self._credit_senders.get(target.name)
        if sender is None:
            sender = self._credit_senders[target.name] = ReliableSender(
                self.sim,
                lambda frame, peer=target: self.network.send(self, peer, frame),
                self._count_retransmits,
                window=self.flow.control_window if self.flow is not None else None,
            )
        return sender

    def _send_peer(self, target: Process, payload: Any) -> None:
        """Send one control payload to a non-parent peer (reliably when
        enabled)."""
        if not self.reliable_enabled:
            self.network.send(self, target, payload)
            return
        self._peer_sender(target).send(payload)

    # -- downstream credit spending ------------------------------------

    def _downlink_for(self, destination: Process) -> Tuple[CreditWindow, BoundedQueue]:
        window = self._downlink_credits.get(destination.name)
        if window is None:
            window = self._downlink_credits[destination.name] = CreditWindow(
                self.flow.link_window
            )
        queue = self._outbound.get(destination.name)
        if queue is None:
            queue = self._outbound[destination.name] = BoundedQueue(
                self.flow.outbound_capacity,
                self.flow.policy,
                priority=self._shed_priority,
            )
        return window, queue

    def _forward_controlled(
        self, destination: "BrokerNode", run: Sequence[Publish]
    ) -> None:
        """Forward a run to a broker child, spending one credit per event;
        credit-starved events wait in the bounded outbound queue."""
        window, queue = self._downlink_for(destination)
        sendable: List[Publish] = []
        for publish in run:
            if not queue and window.take(1):
                sendable.append(publish)
                continue
            self.counters.credit_stalls += 1
            _, shed = queue.offer(publish)
            if shed:
                self._shed_publishes(shed, "outbound-overflow", peer=destination.name)
        if sendable:
            self._send_run(destination, sendable)

    def _on_credit_grant(self, message: CreditGrant, sender: Process) -> None:
        window = self._downlink_credits.get(sender.name)
        if window is None:
            return  # stale grant for a link we no longer track
        window.grant(message.credits)
        self._flush_outbound(sender)
        if self._replayer is not None:
            # A replay stalled on this window can resume immediately.
            self._replayer.kick()

    def _flush_outbound(self, destination: Process) -> None:
        queue = self._outbound.get(destination.name)
        window = self._downlink_credits.get(destination.name)
        if queue is None or window is None:
            return
        sendable: List[Publish] = []
        while queue and window.take(1):
            sendable.append(queue.popleft())
        if sendable:
            self._send_run(destination, sendable)
        self._maybe_resume_drain()

    def _reset_downlink(self, peer: Process) -> None:
        """A downstream peer lost its state (ChannelReset or a new channel
        epoch): its window comes back full, and events queued for the dead
        incarnation are shed — its wiped table would drop them anyway."""
        window = self._downlink_credits.get(peer.name)
        if window is not None:
            window.reset()
        queue = self._outbound.get(peer.name)
        if queue is not None and queue:
            self._shed_publishes(queue.drain(), "peer-reset", peer=peer.name)
        # The peer's data-frame numbering died with its incarnation.
        self._data_seq_out.pop(peer.name, None)
        self._maybe_resume_drain()

    # -- shedding accounting -------------------------------------------

    def _shed_entries(
        self, entries: Sequence[Tuple[Publish, str, float]], reason: str
    ) -> None:
        """Shed inbound entries: count, trace, and grant their credits
        back (the source paid one per entry; the slot is free again, and
        withholding the grant would leak the window shut)."""
        self.counters.on_shed(reason, len(entries))
        for publish, source, _ in entries:
            self._shed_span(publish, reason, peer=source)
        if self.flow is None:
            return
        per_source: Dict[str, int] = {}
        for _, source, _ in entries:
            per_source[source] = per_source.get(source, 0) + 1
        for source, count in per_source.items():
            self._grant_credits(source, count)

    def _shed_publishes(
        self, publishes: Sequence[Publish], reason: str, peer: Optional[str] = None
    ) -> None:
        """Shed outbound events (no downstream credit was spent on them)."""
        self.counters.on_shed(reason, len(publishes))
        for publish in publishes:
            self._shed_span(publish, reason, peer=peer)

    def _shed_offline(self, subscriber: str, publish: Publish) -> None:
        self.counters.on_shed("offline-buffer")
        drops = self.counters.offline_drops
        drops[subscriber] = drops.get(subscriber, 0) + 1
        self._shed_span(publish, "offline-buffer", peer=subscriber)

    def _shed_span(
        self, publish: Publish, reason: str, peer: Optional[str] = None
    ) -> None:
        if not self.tracer.enabled:
            return
        details: List[Tuple[str, Any]] = [("reason", reason)]
        if peer is not None:
            details.append(("peer", peer))
        self.tracer.span(
            self.sim.now,
            "shed",
            self.name,
            self.stage,
            trace_id=publish.envelope.event_id,
            details=tuple(details),
        )

    def _on_overload_transition(self, state: str, now: float, ewma: float) -> None:
        self.counters.overload_transitions += 1
        if self.tracer.enabled:
            self.tracer.span(
                now,
                "overload",
                self.name,
                self.stage,
                details=(("state", state), ("ewma", f"{ewma:.2f}")),
            )

    def __repr__(self) -> str:
        return f"BrokerNode({self.name}, stage={self.stage}, filters={len(self.table)})"
