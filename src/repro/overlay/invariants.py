"""Runtime invariant checks over a built hierarchy.

The central safety property of the multi-stage scheme (and the one PR 2's
aggregation made fragile under message loss) is the *covering invariant*:
for every broker child, the parent's filter table routed *to that child*
must cover the stage-``s+1`` weakened form of every filter the child
holds under a live lease.  While it holds, an event matching any live
downstream subscription is forwarded at every stage — delivery loss can
only come from the leaves outward, never from a hole in the routing
tables.

The checker reads live state only (lease-expired pairs are the soft-state
decay working as designed, not a violation) and skips crashed brokers
(a crashed child neither holds state nor receives events).
"""

from dataclasses import dataclass
from typing import List

from repro.core.weakening import weaken_filter
from repro.filters.filter import Filter
from repro.overlay.hierarchy import Hierarchy
from repro.overlay.node import BrokerNode


@dataclass(frozen=True)
class CoveringViolation:
    """One hole: ``child`` holds ``filter`` live, but no filter at
    ``parent`` routed to ``child`` covers its weakened ``form``."""

    parent: BrokerNode
    child: BrokerNode
    filter: Filter
    form: Filter

    def __str__(self) -> str:
        return (
            f"{self.parent.name} does not cover {self.form} "
            f"(from {self.filter} at {self.child.name})"
        )


def covering_violations(
    hierarchy: Hierarchy, now: float
) -> List[CoveringViolation]:
    """Check the covering invariant at every parent/child broker edge.

    ``now`` is the simulated time used to decide lease liveness.  Returns
    every hole found (empty list = invariant holds system-wide); chaos
    tests poll this after a fault schedule to measure convergence.
    """
    violations: List[CoveringViolation] = []
    for child in hierarchy.nodes():
        parent = child.parent
        if parent is None or child.crashed or parent.crashed:
            continue
        # Filters the parent currently routes toward this child.
        routed = [
            stored
            for stored, ids in parent.table.entries()
            if any(destination is child for destination in ids)
        ]
        for filter_, destination in child.leases.pairs():
            if not child.leases.is_live(filter_, destination, now):
                continue
            event_class = child._filter_class.get(filter_)
            if event_class is None:
                continue
            advertisement = child.advertisements.get(event_class)
            if advertisement is None:
                continue
            form = weaken_filter(
                filter_, advertisement.association, child.stage + 1
            )
            if not any(stored.covers(form) for stored in routed):
                violations.append(
                    CoveringViolation(parent, child, filter_, form)
                )
    return violations
