"""Reliable, ordered control channel between overlay neighbours.

PR 2's covering aggregation made the control plane order-sensitive: a
``Withdraw`` must land after its replacement ``ReqInsert`` or the parent
transiently stops covering the child's filters.  A lossy or jittery link
(see ``sim.network.FaultPlan``) can drop or reorder exactly those
messages, so order-sensitive control traffic travels through this
channel: per-neighbour sequence numbers, cumulative acks, duplicate
discard, in-order delivery, and retransmission with capped exponential
backoff.

The channel is an *ordering and latency* mechanism, not the sole
correctness mechanism — the paper's §4.3 refresh-or-restore renewals
remain the eventual safety net (a renewal re-installs anything a broker
is missing).  The channel guarantees the renewals have a consistent,
promptly-converging state to refresh.

Epochs handle crash/restart: a sender that loses its state restarts at
``seq`` 0 under a higher ``epoch``; receivers treat a higher epoch as a
fresh channel (expected seq 0) and drop stale-epoch frames.  Receivers
with no state adopt the first frame they see, which tolerates receivers
that themselves lost state.
"""

from collections import OrderedDict, deque
from typing import Any, Callable, Deque, Dict, Optional

from repro.overlay.messages import Ack, Sequenced
from repro.runtime.base import Executor

#: Initial retransmission timeout.  Links default to 1 ms latency, so
#: 50 ms comfortably exceeds one RTT while staying well under the renewal
#: period (fractions of a TTL).
DEFAULT_RTO = 0.05

#: Backoff cap: retransmission intervals double up to this.
MAX_RTO = 2.0


class ReliableSender:
    """Sending half: frames payloads, retransmits until acked.

    Retransmission is go-back-N: one timer per channel; on expiry every
    unacked frame is resent (the receiver discards duplicates).  Each
    application-level send is counted once by the caller; retransmits are
    accounted via ``on_retransmit`` (a frame count) and optionally
    observed in detail via ``observer`` (the frames themselves, for
    tracing).

    The timer callback is **epoch-guarded**: it remembers the epoch it
    was armed in and does nothing if the channel has since been reset.
    Cancellation alone is not enough — a timer that already escaped
    cancellation (popped from the simulator queue in the same instant as
    the reset, or its handle clobbered by a bug elsewhere) would
    otherwise retransmit and recount frames from the dead epoch and
    null out the live epoch's timer reference, leaving two concurrent
    retransmit loops.

    **Bounded send window**: with ``window`` set, at most that many
    frames are outstanding (unacked) at once; further sends queue as
    raw payloads in ``pending`` and frame up as acks open the window —
    the outstanding-frame set, previously the one unbounded queue of
    the control plane, becomes a hard bound and backpressure lands on
    the local ``pending`` queue instead of the wire.  Receivers with a
    configured capacity additionally advertise their free buffer space
    on every ack (``Ack.credits``), and the sender caps its effective
    window to the advertisement — credit flow control piggybacked on
    the acks that flow anyway.
    """

    __slots__ = (
        "sim",
        "send_raw",
        "on_retransmit",
        "observer",
        "window",
        "peer_credits",
        "pending",
        "epoch",
        "next_seq",
        "unacked",
        "rto",
        "_timer",
    )

    def __init__(
        self,
        sim: Executor,
        send_raw: Callable[[Any], None],
        on_retransmit: Optional[Callable[[int], None]] = None,
        observer: Optional[Callable[[int, tuple], None]] = None,
        window: Optional[int] = None,
    ):
        if window is not None and window < 1:
            raise ValueError(f"send window must be >= 1, got {window}")
        self.sim = sim
        #: Puts one frame on the wire (binds owner + peer + network).
        self.send_raw = send_raw
        self.on_retransmit = on_retransmit
        #: Detailed retransmit hook ``observer(epoch, frames)`` for tracing.
        self.observer = observer
        #: Max outstanding frames (``None`` = unbounded, the legacy mode).
        self.window = window
        #: Receiver-advertised buffer space (piggybacked on acks).
        self.peer_credits: Optional[int] = None
        #: Payloads waiting for the window to open (FIFO).
        self.pending: Deque[Any] = deque()
        self.epoch = 0
        self.next_seq = 0
        self.unacked: "OrderedDict[int, Sequenced]" = OrderedDict()
        self.rto = DEFAULT_RTO
        self._timer: Optional[Any] = None

    def _window_full(self) -> bool:
        limit = self.window
        if self.peer_credits is not None:
            limit = self.peer_credits if limit is None else min(limit, self.peer_credits)
        return limit is not None and len(self.unacked) >= limit

    def send(self, payload: Any) -> None:
        """Frame and transmit one payload; retransmit until acked.

        When the send window is closed the payload queues locally and
        goes out (in order) as acks open the window."""
        if self.pending or self._window_full():
            self.pending.append(payload)
            return
        self._transmit(payload)

    def _transmit(self, payload: Any) -> None:
        frame = Sequenced(self.epoch, self.next_seq, payload)
        self.next_seq += 1
        self.unacked[frame.seq] = frame
        self.send_raw(frame)
        self._arm()

    def on_ack(self, ack: Ack) -> None:
        if ack.epoch != self.epoch:
            return
        if ack.credits is not None:
            self.peer_credits = ack.credits
        acked = [seq for seq in self.unacked if seq <= ack.seq]
        if not acked:
            self._drain_pending()
            return
        for seq in acked:
            del self.unacked[seq]
        # Forward progress: restart the backoff from the base timeout.
        self.rto = DEFAULT_RTO
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._drain_pending()
        if self.unacked:
            self._arm()

    def _drain_pending(self) -> None:
        while self.pending and not self._window_full():
            self._transmit(self.pending.popleft())

    def reset(self) -> None:
        """Start a fresh incarnation of the channel (sender lost state or
        was told the receiver did).  Unacked and pending frames are
        abandoned — the caller follows up with a full state refresh
        (renewal)."""
        self.epoch += 1
        self.next_seq = 0
        self.unacked.clear()
        self.pending.clear()
        self.peer_credits = None
        self.rto = DEFAULT_RTO
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def idle(self) -> bool:
        """True when every sent frame has been acknowledged and nothing
        waits for the window."""
        return not self.unacked and not self.pending

    @property
    def outstanding(self) -> int:
        """Frames on the wire awaiting acknowledgement."""
        return len(self.unacked)

    def _arm(self) -> None:
        if self._timer is None:
            self._timer = self.sim.schedule(self.rto, self._on_timeout, self.epoch)

    def _on_timeout(self, armed_epoch: int) -> None:
        if armed_epoch != self.epoch:
            # Stale timer from before a reset: the frames it was guarding
            # died with their epoch.  Touch nothing — especially not
            # ``_timer``, which may reference the live epoch's timer.
            return
        self._timer = None
        if not self.unacked:
            return
        if self.on_retransmit is not None:
            self.on_retransmit(len(self.unacked))
        if self.observer is not None:
            self.observer(self.epoch, tuple(self.unacked.values()))
        for frame in self.unacked.values():
            self.send_raw(frame)
        self.rto = min(self.rto * 2, MAX_RTO)
        self._arm()


class ReliableReceiver:
    """Receiving half: reorders, deduplicates, acks cumulatively.

    With ``capacity`` set, every ack advertises the remaining reorder
    buffer space (``Ack.credits``), so a window-bounded sender never
    outruns what this receiver can hold out of order."""

    __slots__ = ("epoch", "expected", "buffer", "dups_discarded", "capacity")

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"receive capacity must be >= 1, got {capacity}")
        self.epoch: Optional[int] = None
        self.expected = 0
        self.buffer: Dict[int, Sequenced] = {}
        self.dups_discarded = 0
        self.capacity = capacity

    def _ack(self) -> Ack:
        credits = None
        if self.capacity is not None:
            credits = max(0, self.capacity - len(self.buffer))
        return Ack(self.epoch, self.expected - 1, credits)

    def on_frame(self, frame: Sequenced, deliver: Callable[[Any], None]) -> Ack:
        """Process one frame: deliver any newly in-order payloads through
        ``deliver`` and return the cumulative :class:`Ack` to send back."""
        if self.epoch is None:
            # No state for this peer (fresh receiver, or receiver restart
            # with a sender mid-stream): adopt the frame's position.  Any
            # earlier frames are unknowable; the sender's periodic renewal
            # refreshes whatever they carried.
            self.epoch = frame.epoch
            self.expected = frame.seq
        elif frame.epoch > self.epoch:
            # Sender restarted: fresh channel.
            self.epoch = frame.epoch
            self.expected = 0
            self.buffer.clear()
        elif frame.epoch < self.epoch:
            # Stale incarnation still in flight; ack our position so a
            # confused sender stops retransmitting into the void.
            return self._ack()
        if frame.seq < self.expected or frame.seq in self.buffer:
            self.dups_discarded += 1
        else:
            self.buffer[frame.seq] = frame
            while self.expected in self.buffer:
                ready = self.buffer.pop(self.expected)
                self.expected += 1
                deliver(ready.payload)
        return self._ack()

    def reset(self) -> None:
        """Forget the peer's channel (it announced a new incarnation)."""
        self.epoch = None
        self.expected = 0
        self.buffer.clear()
