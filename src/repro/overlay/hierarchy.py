"""Hierarchy construction: the N-stage broker tree of Figure 4.

The paper's simulation uses one stage-3 root, 10 stage-2 nodes, and 100
stage-1 nodes; :func:`build_hierarchy` generalizes to any per-stage node
counts, distributing children round-robin so the tree stays balanced.
Node names follow the paper's ``N<stage>.<index>`` convention.
"""

from typing import Callable, Dict, List, Optional, Sequence

from repro.filters.index import CountingIndex
from repro.flow import FlowConfig
from repro.log.config import LogConfig
from repro.obs.tracing import EventTracer
from repro.overlay.node import BrokerNode, MatchEngine
from repro.runtime.base import Executor, Transport
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class Hierarchy:
    """A built broker tree plus lookup helpers."""

    def __init__(self, nodes_by_stage: Dict[int, List[BrokerNode]]):
        self.nodes_by_stage = nodes_by_stage
        self.stages = sorted(nodes_by_stage, reverse=True)
        top = self.stages[0]
        if len(nodes_by_stage[top]) != 1:
            raise ValueError(
                f"the top stage must hold exactly one root node, got "
                f"{len(nodes_by_stage[top])}"
            )
        self.root = nodes_by_stage[top][0]

    @property
    def top_stage(self) -> int:
        return self.stages[0]

    def nodes(self, stage: Optional[int] = None) -> List[BrokerNode]:
        """All nodes, or the nodes of one stage (highest stage first)."""
        if stage is not None:
            return list(self.nodes_by_stage.get(stage, []))
        result: List[BrokerNode] = []
        for s in self.stages:
            result.extend(self.nodes_by_stage[s])
        return result

    def stage1_nodes(self) -> List[BrokerNode]:
        return self.nodes(1)

    def start_maintenance(self) -> None:
        for node in self.nodes():
            node.start_maintenance()

    def stop_maintenance(self) -> None:
        for node in self.nodes():
            node.stop_maintenance()

    def __repr__(self) -> str:
        shape = {s: len(ns) for s, ns in sorted(self.nodes_by_stage.items())}
        return f"Hierarchy({shape})"


def build_hierarchy(
    sim: Executor,
    network: Transport,
    stage_sizes: Sequence[int],
    ttl: float = 60.0,
    engine_factory: Callable[[], MatchEngine] = CountingIndex,
    rngs: Optional[RngRegistry] = None,
    trace: Optional[TraceRecorder] = None,
    link_latency: float = 0.001,
    wildcard_routing: bool = True,
    compact: bool = False,
    cache: bool = True,
    batch: bool = True,
    aggregate: bool = True,
    reliable: bool = True,
    tracer: Optional[EventTracer] = None,
    flow: Optional[FlowConfig] = None,
    service_rate: Optional[float] = None,
    service_batch: int = 16,
    log: Optional[LogConfig] = None,
) -> Hierarchy:
    """Build a balanced broker tree.

    ``stage_sizes[i]`` is the number of nodes at stage ``i + 1``; the last
    entry must be 1 (the root).  The paper's configuration is
    ``stage_sizes=[100, 10, 1]``.  Children are assigned to parents
    round-robin: child ``k`` at stage ``s`` hangs under parent
    ``k % len(stage s+1)``.
    """
    if not stage_sizes:
        raise ValueError("need at least one stage of brokers")
    if stage_sizes[-1] != 1:
        raise ValueError(f"the top stage must have exactly 1 node, got {stage_sizes[-1]}")
    if any(size < 1 for size in stage_sizes):
        raise ValueError(f"every stage needs at least one node: {list(stage_sizes)}")
    rngs = rngs or RngRegistry(0)

    nodes_by_stage: Dict[int, List[BrokerNode]] = {}
    for index, size in enumerate(stage_sizes):
        stage = index + 1
        nodes_by_stage[stage] = [
            BrokerNode(
                sim,
                network,
                name=f"N{stage}.{i + 1}",
                stage=stage,
                ttl=ttl,
                engine_factory=engine_factory,
                rng=rngs.stream(f"node/N{stage}.{i + 1}"),
                trace=trace,
                wildcard_routing=wildcard_routing,
                compact=compact,
                cache=cache,
                batch=batch,
                aggregate=aggregate,
                reliable=reliable,
                tracer=tracer,
                flow=flow,
                service_rate=service_rate,
                service_batch=service_batch,
                log_config=log,
            )
            for i in range(size)
        ]

    for index in range(len(stage_sizes) - 1):
        stage = index + 1
        parents = nodes_by_stage[stage + 1]
        for position, child in enumerate(nodes_by_stage[stage]):
            parent = parents[position % len(parents)]
            parent.attach_child(child)
            network.connect(parent, child, latency=link_latency)

    return Hierarchy(nodes_by_stage)
