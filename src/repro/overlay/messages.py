"""Protocol messages exchanged over the overlay.

Processes address each other directly by reference (the simulator's
equivalent of a node id); names match the paper's vocabulary:
``Subscription(fsub)``, ``join-At``, ``accepted-At``, ``req-Insert``,
renewal messages, advertisements, and event publication.
"""

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.advertisement import Advertisement
from repro.events.serialization import Envelope
from repro.filters.filter import Filter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Process
    from repro.streams.spec import FlowSpec


@dataclass(frozen=True)
class Advertise:
    """Advertisement dissemination: flooded from the root to all nodes."""

    advertisement: Advertisement


@dataclass(frozen=True)
class SubscriptionRequest:
    """``Subscription(fsub)`` of Figure 5: a subscriber looking for a home.

    ``filter`` is already in standard subscription format (Section 4.4);
    ``subscription_id`` lets the subscriber correlate the eventual
    ``accepted-At`` with the right pending subscription.
    """

    filter: Filter
    event_class: str
    subscriber: "Process"
    subscription_id: int


@dataclass(frozen=True)
class JoinAt:
    """``join-At(id)``: retry the subscription request at ``node``."""

    node: "Process"
    subscription_id: int


@dataclass(frozen=True)
class AcceptedAt:
    """``accepted-At(node)``: the subscription now lives at ``node``."""

    node: "Process"
    subscription_id: int
    #: The weakened filter the node stored (returned for observability).
    stored_filter: Filter


@dataclass(frozen=True)
class ReqInsert:
    """``req-Insert(fc, idc)``: child asks parent to route ``fc`` to it."""

    filter: Filter
    event_class: str
    child: "Process"


@dataclass(frozen=True)
class Withdraw:
    """Child retracts a previously ``req-Insert``-ed filter at its parent.

    Emitted by covering-based aggregation when a propagated filter
    becomes redundant (demoted under a more general cover) or dies
    (unsubscribed / expired / disconnected).  Senders order any
    replacement ``ReqInsert`` *before* the ``Withdraw`` so the parent's
    table covers the union of the child's filters at every instant —
    events may over-approximate briefly (sound by Proposition 1) but are
    never lost.
    """

    filter: Filter
    event_class: str
    child: "Process"


@dataclass(frozen=True)
class Renewal:
    """Lease renewal (§4.3): refresh the sender's filters at the receiver.

    ``items`` lists ``(filter, event_class)`` pairs — the weakened filters
    the sender previously submitted.  Renewal is *refresh-or-restore*: a
    pair missing from the receiver's table (purged after a partition, say)
    is re-inserted, which is what lets the soft-state scheme self-heal.
    """

    items: tuple  # Tuple[Tuple[Filter, str], ...]


@dataclass(frozen=True)
class Unsubscribe:
    """Optional explicit unsubscription (§4.3 allows combining with TTL)."""

    filter: Filter
    subscriber: "Process"


@dataclass(frozen=True)
class Disconnect:
    """A subscriber going offline gracefully (§2.1 durable subscriptions).

    With ``durable=True`` the node buffers matching events for replay on
    reconnection; otherwise it simply stops forwarding to the subscriber
    (its filters stay installed until their leases lapse).
    """

    durable: bool = True


@dataclass(frozen=True)
class Reconnect:
    """A disconnected subscriber returning: flush any buffered events."""


@dataclass(frozen=True)
class Sequenced:
    """Reliable-channel frame: ``payload`` with a per-sender sequence number.

    Control messages whose loss or reordering would corrupt routing state
    (``ReqInsert``/``Withdraw``/``Renewal``/``Unsubscribe``) travel inside
    ``Sequenced`` frames.  ``epoch`` identifies one incarnation of the
    sender's channel: a sender that loses its state (broker restart)
    starts a new epoch at ``seq`` 0 rather than colliding with the
    receiver's memory of the old numbering.  Receivers deliver payloads in
    ``seq`` order within an epoch, discard duplicates, and acknowledge
    cumulatively.
    """

    epoch: int
    seq: int
    payload: object


@dataclass(frozen=True)
class Ack:
    """Cumulative acknowledgement: every frame of ``epoch`` up to and
    including ``seq`` arrived (``seq`` -1 acks an empty prefix, i.e. it
    only reports the receiver's current epoch).

    ``credits`` piggybacks receiver-buffer flow control on the ack that
    was going back anyway (no new round-trips): when set, it advertises
    how many more frames the receiver can buffer, and the sender caps
    its in-flight window to it.  ``None`` (the default, and the only
    value produced by receivers without a configured capacity) means
    "no advertisement" — the pre-flow-control wire format.
    """

    epoch: int
    seq: int
    credits: Optional[int] = None


@dataclass(frozen=True)
class ChannelReset:
    """A restarted broker announcing a fresh incarnation to a neighbour.

    The receiver discards any channel state it kept for the sender (both
    directions) and, if it is a child of the sender, immediately renews
    all its propagated filters — the refresh-or-restore path (§4.3) that
    rebuilds the restarted parent's table without waiting a full renewal
    period.  ``incarnation`` makes redundant resets idempotent.
    """

    incarnation: int


@dataclass(frozen=True)
class FlowInstall:
    """Install-or-renew one information flow at the receiving broker.

    Sent (reliably) by a :class:`~repro.streams.registrar.FlowRegistrar`.
    Idempotent in the refresh-or-restore style of §4.3: a broker already
    holding an identical spec just refreshes the flow's lease; a broker
    that lost it (crash, lease expiry) rebuilds the operator machine from
    scratch — with empty window state, which is exactly the soft-state
    contract (DESIGN §15).
    """

    spec: "FlowSpec"


@dataclass(frozen=True)
class FlowRemove:
    """Tear one flow down by name, discarding its pending state."""

    flow: str


@dataclass(frozen=True)
class CreditGrant:
    """Receiver-to-sender flow-control grant for one data link.

    Grants ``credits`` more event sends on the link (the receiver issues
    them one-for-one as it *processes* events, so the link window bounds
    in-flight + receiver-queued events).  Grants travel on the reliable
    control channel — a child's grants to its parent ride the existing
    uplink sender, a root's grants to a publisher ride a dedicated
    per-publisher channel — so a grant lost to the wire is retransmitted
    rather than deadlocking the credit loop.
    """

    credits: int


@dataclass(frozen=True)
class Publish:
    """An event on its way down the hierarchy (or into a subscriber).

    ``offset`` is the root's event-log offset for this event, stamped by
    the root when it has a log and carried unchanged downstream: every
    broker that logs the event records the same root offset, which is the
    coordinate crash recovery replays from (see :mod:`repro.log`).
    ``None`` means "not yet through a logging root" (publisher→root leg,
    or a system with no log configured).
    """

    envelope: Envelope
    offset: Optional[int] = None


@dataclass(frozen=True)
class PublishBatch:
    """A run of events coalesced onto one link (batched dispatch).

    A broker that processed a run of events in one wakeup forwards the
    events bound for the same destination as a single message: one
    scheduling round and one ``receive`` call instead of ``len(publishes)``.
    Receivers process the contained events in order, so per-destination
    delivery order is exactly that of the equivalent unbatched sends.
    """

    publishes: tuple  # Tuple[Publish, ...]

    def __len__(self) -> int:
        return len(self.publishes)


@dataclass(frozen=True)
class DataFrame:
    """A run of events with a per-link data sequence number.

    With flow control on, every data send (publisher→root and
    broker→broker) is framed: ``seq`` is the link-local sequence number
    of the *first* contained event and the run covers ``seq ..
    seq + len(publishes) - 1``.  Data frames are *not* retransmitted —
    events remain best-effort, exactly as before — but the numbering
    lets the receiver detect how many events a lossy link swallowed and
    return the credits those events consumed (the DESIGN §10 credit-leak
    fix).  ``publishes`` keeps the attribute name the network tracer
    duck-types for per-event drop/duplicate spans.
    """

    seq: int
    publishes: tuple  # Tuple[Publish, ...]

    def __len__(self) -> int:
        return len(self.publishes)


@dataclass(frozen=True)
class CatchUpRequest:
    """A late subscriber asking the root to replay history (catch-up).

    Sent on the subscriber's reliable control channel to the root after
    the subscription is accepted.  ``from_offset``/``from_time`` pick the
    replay origin in the root's event log (offset wins when both are
    set; ``from_time`` may be simulated seconds or an ISO-8601 string).
    The root streams matching history as :class:`CatchUpBatch` frames at
    the configured replay rate, fences the live boundary, and announces
    :class:`CatchUpDone` then :class:`CatchUpLive` (see
    :mod:`repro.log.replay` for the switchover protocol).
    """

    subscription_id: int
    filter: Filter
    event_class: str
    subscriber: "Process"
    home: "Process"
    from_offset: Optional[int] = None
    from_time: Optional[object] = None  # float seconds or ISO-8601 str


@dataclass(frozen=True)
class CatchUpBatch:
    """A run of replayed (``history=True``) or live-tapped events for one
    catch-up session, sent root→subscriber on the reliable channel."""

    subscription_id: int
    publishes: tuple  # Tuple[Publish, ...]
    history: bool = True

    def __len__(self) -> int:
        return len(self.publishes)


@dataclass(frozen=True)
class CatchUpDone:
    """History drained: every log record up to the session's fence has
    been offered.  Live taps continue until :class:`CatchUpLive`."""

    subscription_id: int
    replayed: int


@dataclass(frozen=True)
class CatchUpLive:
    """Switchover complete: the normal overlay path now covers the
    subscription end-to-end, the root stops tapping, and subsequent
    events arrive only via the subscriber's home broker."""

    subscription_id: int


@dataclass(frozen=True)
class ReplayRequest:
    """A restarted broker asking the root to re-drive events it may have
    missed while down, starting after root offset ``from_offset``
    (exclusive; ``-1`` replays from the log's start)."""

    child: "Process"
    from_offset: int


@dataclass(frozen=True)
class ReplayBatch:
    """A run of recovery-replay events for a restarted broker.  The
    receiver deduplicates against its own log and feeds the remainder
    through normal event processing."""

    publishes: tuple  # Tuple[Publish, ...]

    def __len__(self) -> int:
        return len(self.publishes)
