"""The broker overlay of Section 4: an arbitrarily-deep hierarchy.

- :mod:`~repro.overlay.messages` — the protocol vocabulary (publish,
  subscription routing, filter insertion, renewals, advertisements);
- :mod:`~repro.overlay.node` — :class:`BrokerNode`, implementing the
  node side of Figure 5(b) and the forwarding loop of Figure 6;
- :mod:`~repro.overlay.subscriber` — the subscriber runtime: the join
  protocol of Figure 5(a) and perfect stage-0 filtering;
- :mod:`~repro.overlay.publisher` — the publisher runtime: advertising
  and event transformation at the publishing boundary;
- :mod:`~repro.overlay.hierarchy` — topology construction (the paper's
  1 / 10 / 100-node configuration and variants).
"""

from repro.overlay.hierarchy import Hierarchy, build_hierarchy
from repro.overlay.messages import (
    AcceptedAt,
    Advertise,
    JoinAt,
    Publish,
    Renewal,
    ReqInsert,
    SubscriptionRequest,
    Unsubscribe,
)
from repro.overlay.node import BrokerNode
from repro.overlay.publisher import PublisherRuntime
from repro.overlay.subscriber import SubscriberRuntime

__all__ = [
    "AcceptedAt",
    "Advertise",
    "BrokerNode",
    "Hierarchy",
    "JoinAt",
    "Publish",
    "PublisherRuntime",
    "Renewal",
    "ReqInsert",
    "SubscriberRuntime",
    "SubscriptionRequest",
    "Unsubscribe",
    "build_hierarchy",
]
