"""The broker overlay of Section 4: an arbitrarily-deep hierarchy.

- :mod:`~repro.overlay.messages` — the protocol vocabulary (publish,
  subscription routing, filter insertion, renewals, advertisements);
- :mod:`~repro.overlay.node` — :class:`BrokerNode`, implementing the
  node side of Figure 5(b) and the forwarding loop of Figure 6;
- :mod:`~repro.overlay.subscriber` — the subscriber runtime: the join
  protocol of Figure 5(a) and perfect stage-0 filtering;
- :mod:`~repro.overlay.publisher` — the publisher runtime: advertising
  and event transformation at the publishing boundary;
- :mod:`~repro.overlay.hierarchy` — topology construction (the paper's
  1 / 10 / 100-node configuration and variants).
"""

from repro.overlay.channel import ReliableReceiver, ReliableSender
from repro.overlay.hierarchy import Hierarchy, build_hierarchy
from repro.overlay.invariants import CoveringViolation, covering_violations
from repro.overlay.messages import (
    AcceptedAt,
    Ack,
    Advertise,
    ChannelReset,
    JoinAt,
    Publish,
    Renewal,
    ReqInsert,
    Sequenced,
    SubscriptionRequest,
    Unsubscribe,
)
from repro.overlay.node import BrokerNode
from repro.overlay.publisher import PublisherRuntime
from repro.overlay.subscriber import SubscriberRuntime

__all__ = [
    "AcceptedAt",
    "Ack",
    "Advertise",
    "BrokerNode",
    "ChannelReset",
    "CoveringViolation",
    "Hierarchy",
    "JoinAt",
    "Publish",
    "PublisherRuntime",
    "ReliableReceiver",
    "ReliableSender",
    "Renewal",
    "ReqInsert",
    "Sequenced",
    "SubscriberRuntime",
    "SubscriptionRequest",
    "Unsubscribe",
    "build_hierarchy",
    "covering_violations",
]
