"""Execution-runtime abstraction: one overlay, two backends.

The paper's routing and weakening machinery is runtime-agnostic; what
binds it to an execution substrate is a tiny surface — a clock, a timer
wheel, and a message transport.  :mod:`repro.runtime.base` names that
surface as structural protocols (:class:`Clock`, :class:`Timer`,
:class:`Executor`, :class:`Transport`).  The deterministic simulator
(:class:`repro.sim.kernel.Simulator` + :class:`repro.sim.network.
Network`) satisfies them as-is; :mod:`repro.runtime.asyncio_backend`
provides a second implementation running the same overlay/flow/log code
on an asyncio event loop over real localhost TCP sockets.

:mod:`repro.runtime.multiprocess_backend` goes one step further and
puts every broker in its own OS process (spawned workers, the same
frame codec on the wire, a control RPC for orchestration), making
``kill`` a genuine SIGKILL.

Backend classes are imported lazily so that importing the protocols
never drags in the socket or multiprocessing machinery.
"""

from repro.runtime.base import Clock, Executor, Timer, Transport

__all__ = [
    "AsyncioRuntime",
    "Clock",
    "Executor",
    "MultiprocessRuntime",
    "MultiprocessTransport",
    "TcpTransport",
    "Timer",
    "Transport",
]


def __getattr__(name: str):
    if name in ("AsyncioRuntime", "TcpTransport"):
        from repro.runtime import asyncio_backend

        return getattr(asyncio_backend, name)
    if name in ("MultiprocessRuntime", "MultiprocessTransport"):
        from repro.runtime import multiprocess_backend

        return getattr(multiprocess_backend, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
