"""Multi-process backend: every broker is its own OS process.

PR 8's asyncio backend put the whole overlay on one event loop in one
process, so "crash" was still cooperative — ``kill`` ran ``crash()``
in-process and the broker's Python objects (channel epochs, cached
writers, the in-memory log) conveniently survived to help recovery
along.  This backend removes the convenience: each broker runs in a
child process spawned via :mod:`multiprocessing`, ``kill`` is a real
``SIGKILL`` with no teardown of any kind, and restart is a *fresh
process* that recovers solely from the on-disk :class:`EventLog`
segments and the paper's §4.3 refresh-or-restore renewals.

Wire protocol
-------------

Unchanged from PR 8: length-prefixed JSON frames
(:func:`repro.runtime.asyncio_backend.encode_frame`), with ``Process``
references travelling as name refs.  Frames carry a source name but no
destination — addressing is *which server socket the frame arrives at*
— so the one-listening-server-per-process model maps directly onto
processes: each worker binds one data server for its broker, and the
driver binds one per local publisher/subscriber.  Name refs resolve
against each process's local registry, where every non-local name is a
:class:`RemoteProcess` / :class:`BrokerProxy` stand-in registered at
the same name.  Because the stand-ins are per-name singletons, identity
checks in overlay code (``sender is self.parent``, ``s.home is
sender``) keep working across the wire.

Control RPC
-----------

The driver binds one control server; each worker connects to it at
startup and speaks newline-delimited JSON:

- **bind-report**: the worker's first line is ``{"name", "port",
  "pid"}`` — the data port it bound, reported before any traffic flows.
- **register**: driver -> worker directory updates (name, port, stage)
  as publishers/subscribers bind or workers restart.
- **drain**: the worker awaits local idleness (nothing in flight, no
  timer due) within a budget and reports it — the driver's drain
  barrier.
- **stats**: a snapshot (queue depth, log length, table size,
  incarnation, ``NetworkStats``) that ``run_until`` predicates and the
  metrics surface read on the driver.
- **maintenance** / **ping** / **stop**: the obvious.

Kill and restore
----------------

``kill`` sends SIGKILL and *joins the process* — the kill-ack is the
OS reporting it gone, not the victim acking anything.  ``restore``
spawns a fresh worker with the same name, the same data port (peers'
directories stay valid; their one-reconnect-per-dead-cached-writer
logic reaches the rebound server), a frozen directory snapshot, and an
incarnation base strictly above anything peers have seen.  The fresh
worker builds its broker with *no* log, then drives ``crash()`` +
``restart()``: ``restart`` reloads the log via ``EventLog.load(...,
reopen=True)``, announces ``ChannelReset`` to its tree neighbours and
the replay root, and schedules the replay request — the identical
recovery path the simulator exercises, now with genuinely nothing left
in memory to cheat with.
"""

import asyncio
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.flow import FlowConfig
from repro.log.config import LogConfig
from repro.metrics.counters import NodeCounters
from repro.obs.tracing import EventTracer
from repro.overlay.hierarchy import Hierarchy
from repro.runtime.asyncio_backend import (
    BINDING,
    CRASHED,
    INIT,
    RECOVERING,
    AsyncioRuntime,
    TcpTransport,
)
from repro.sim.kernel import Process, SimulationError

#: Endpoint FSM state for processes that live in *another* OS process:
#: the local transport connects out to their port but never binds a
#: server for them.  ``_ensure_server`` only binds from INIT/BINDING,
#: so a REMOTE endpoint can never accidentally become local.
REMOTE = "remote"

_SPAWN = multiprocessing.get_context("spawn")

_ENCODING = "utf-8"


# ----------------------------------------------------------------------
# Specs (must stay plain-picklable: they cross the spawn boundary)
# ----------------------------------------------------------------------


@dataclass
class SystemSpec:
    """Everything a worker needs to rebuild its slice of the system."""

    stage_sizes: Tuple[int, ...]
    ttl: float
    engine: str
    seed: int
    link_latency: float = 0.001
    wildcard_routing: bool = True
    compact: bool = False
    cache: bool = True
    batch: bool = True
    aggregate: bool = True
    reliable: bool = True
    service_rate: Optional[float] = None
    service_batch: int = 16
    flow: Optional[FlowConfig] = None
    log: Optional[LogConfig] = None
    host: str = "127.0.0.1"


@dataclass
class WorkerSpec:
    """One worker's launch parameters (fresh spawn or restore)."""

    name: str
    stage: int
    system: SystemSpec
    control_port: int
    #: 0 = bind an ephemeral port (fresh launch); a fixed port on
    #: restore so peers' cached directories stay valid.
    data_port: int = 0
    #: 0 = fresh broker.  > 0 = restore: the broker starts at this
    #: incarnation and immediately runs crash()+restart(), recovering
    #: from the on-disk log.  The driver picks a base strictly above
    #: every incarnation peers may have recorded for this name.
    incarnation_base: int = 0
    #: name -> (port, stage or None) for every already-bound process.
    directory: Dict[str, Tuple[Optional[int], Optional[int]]] = field(
        default_factory=dict
    )
    maintain: bool = False


def _broker_tree(
    stage_sizes: Sequence[int],
) -> Tuple[Dict[int, List[str]], Dict[str, Optional[str]]]:
    """The pure-name shadow of :func:`build_hierarchy`: same
    ``N<stage>.<index>`` names, same round-robin parent assignment, so
    every process derives the identical topology independently."""
    names_by_stage: Dict[int, List[str]] = {}
    for index, size in enumerate(stage_sizes):
        stage = index + 1
        names_by_stage[stage] = [f"N{stage}.{i + 1}" for i in range(size)]
    top = len(stage_sizes)
    parent_of: Dict[str, Optional[str]] = {}
    for stage in range(1, top + 1):
        names = names_by_stage[stage]
        if stage == top:
            for name in names:
                parent_of[name] = None
        else:
            parents = names_by_stage[stage + 1]
            for position, name in enumerate(names):
                parent_of[name] = parents[position % len(parents)]
    return names_by_stage, parent_of


# ----------------------------------------------------------------------
# Remote stand-ins
# ----------------------------------------------------------------------


class RemoteProcess(Process):
    """A name-addressable stand-in for a process living elsewhere.

    Subclassing :class:`Process` is load-bearing twice over: the frame
    codec's ``persistent_id`` hook serializes any ``Process`` as a name
    ref, and the transport registry returns one singleton per name, so
    overlay identity checks hold across the wire.  Receiving locally is
    a bug by construction — frames for a remote process go out a
    socket, never through ``receive``.
    """

    is_broker = False

    def receive(self, message: Any, sender: Optional[Process] = None) -> None:
        raise SimulationError(
            f"{self.name!r} is remote: frames for it must cross the wire, "
            f"not be delivered in-process"
        )


class BrokerProxy(RemoteProcess):
    """Remote stand-in for a broker: carries the topology facts local
    code reads off a neighbour (``stage``, ``parent``,
    ``broker_children``, the ``is_broker`` duck-type marker) plus the
    latest driver-side stats ``snapshot`` for predicates and metrics."""

    is_broker = True

    def __init__(self, sim: Any, name: str, stage: int):
        super().__init__(sim, name)
        self.stage = stage
        self.parent: Optional[Process] = None
        self.broker_children: List[Process] = []
        #: Latest worker-reported state (see ``_BrokerWorker._snapshot``);
        #: ``{"alive": False}`` when the worker is down.
        self.snapshot: Dict[str, Any] = {}
        self.counters = NodeCounters()

    def stat(self, key: str, default: Any = None) -> Any:
        return self.snapshot.get(key, default)

    def queue_depth(self) -> int:
        return int(self.snapshot.get("queue_depth") or 0)


# ----------------------------------------------------------------------
# Transport (shared remote-routing behaviour + driver specialization)
# ----------------------------------------------------------------------


class _RemoteRoutingTransport(TcpTransport):
    """TcpTransport that knows some endpoints live in other processes."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._remote: Set[str] = set()

    def register_remote(
        self, process: Process, port: Optional[int] = None
    ) -> Any:
        """Register a process whose server socket belongs to another OS
        process: record its port (when known) and pin the endpoint in
        the REMOTE state so it is never lazily bound here."""
        endpoint = self.register(process)
        self._remote.add(process.name)
        if port is not None:
            endpoint.port = port
        if endpoint.state in (INIT, BINDING):
            endpoint.transition(REMOTE)
        return endpoint

    def set_remote_port(self, name: str, port: Optional[int]) -> None:
        endpoint = self._endpoints.get(name)
        if endpoint is not None:
            endpoint.port = port

    def _frame_written(self, src_name: str, dst_name: str, size: int) -> None:
        """A frame fully written toward a remote endpoint will never be
        dispatched by *this* loop — the receiving process accounts its
        own arrival.  Settle it here (write success is this process's
        last sight of the frame) so the local idle detector works."""
        if dst_name not in self._remote:
            return
        if self._settle(src_name, dst_name):
            link = self._links.get((src_name, dst_name))
            if link is not None:
                self.stats.record(link, size)


class MultiprocessTransport(_RemoteRoutingTransport):
    """Driver-side transport: local publishers/subscribers, remote
    brokers, and kill/restore that operate on worker *processes*."""

    def activate(self, process: Process) -> None:
        """Bind ``process``'s data server now and announce its port to
        every worker, synchronously — a local process must be reachable
        before the first frame referencing it crosses the wire."""
        endpoint = self.register(process)
        if endpoint.state in (INIT, BINDING):
            self.runtime._loop.run_until_complete(self._ensure_server(endpoint))
        self.runtime.announce_local(process.name, endpoint.port)

    def kill(self, process: Process) -> None:
        """Fail-stop: SIGKILL for workers, PR 8 semantics otherwise.

        For a worker the sequence is: SIGKILL + join (the kill-ack is
        the OS reporting the pid gone), then the same endpoint teardown
        as the in-process backend — cached writers die, in-flight
        frames reconcile as drops.  Idempotent like the base edge.
        """
        if not self.runtime.owns_worker(process.name):
            super().kill(process)
            return
        endpoint = self._endpoints[process.name]
        if endpoint.state == CRASHED:
            return
        self.runtime.kill_worker(process.name)
        process.crash()
        endpoint.transition(CRASHED)
        endpoint.teardown = self.runtime._loop.create_task(
            self._teardown_endpoint(endpoint)
        )

    def restore(self, process: Process) -> None:
        """Restart a SIGKILL'd worker as a fresh process on its old
        port, recovering from the on-disk log alone."""
        if not self.runtime.owns_worker(process.name):
            super().restore(process)
            return
        endpoint = self._endpoints[process.name]
        if endpoint.state != CRASHED:
            raise SimulationError(
                f"cannot restore {process.name!r}: endpoint state is "
                f"{endpoint.state!r}, not {CRASHED!r} — restoring a live "
                f"worker would fork a second broker process for its name"
            )
        if endpoint.teardown is not None:
            self.runtime._loop.run_until_complete(endpoint.teardown)
            endpoint.teardown = None
        endpoint.transition(RECOVERING)
        self.runtime.restore_worker(process.name)
        endpoint.transition(REMOTE)
        process.restart()


# ----------------------------------------------------------------------
# Driver runtime
# ----------------------------------------------------------------------


class _WorkerHandle:
    __slots__ = (
        "name",
        "stage",
        "process",
        "reader",
        "writer",
        "lock",
        "port",
        "restarts",
        "request_id",
    )

    def __init__(self, name: str, stage: int):
        self.name = name
        self.stage = stage
        self.process: Optional[Any] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.lock = asyncio.Lock()
        self.port: Optional[int] = None
        self.restarts = 0
        self.request_id = 0

    @property
    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.is_alive()
            and self.writer is not None
        )


class WorkerHierarchy(Hierarchy):
    """The driver's view of the broker tree: all proxies.  Maintenance
    toggles broadcast to the workers that own the real nodes."""

    def __init__(self, nodes_by_stage: Dict[int, List[Any]], runtime: "MultiprocessRuntime"):
        super().__init__(nodes_by_stage)
        self.runtime = runtime

    def start_maintenance(self) -> None:
        self.runtime.set_maintenance(True)

    def stop_maintenance(self) -> None:
        self.runtime.set_maintenance(False)


class MultiprocessRuntime(AsyncioRuntime):
    """Driver-side executor: an :class:`AsyncioRuntime` that also
    orchestrates one OS process per broker over the control RPC.

    Workers' loops run continuously in real time, so driving the driver
    loop is all ``run``/``run_for`` need; ``run(until=None)`` adds a
    drain *barrier* (local idle + every worker reporting idle, twice in
    a row), and ``run_until`` refreshes worker stats snapshots between
    polls so predicates can read worker-reported state off the proxies.
    """

    #: Worker spawn is a fresh interpreter + imports; generous.
    hello_timeout = 60.0
    control_timeout = 10.0
    #: Minimum wall-clock gap between stats broadcasts in ``run_until``.
    stats_interval = 0.1

    def __init__(self) -> None:
        super().__init__()
        self._workers: Dict[str, _WorkerHandle] = {}
        self._proxies: Dict[str, BrokerProxy] = {}
        self._pending_hello: Dict[str, "asyncio.Future"] = {}
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._control_port: Optional[int] = None
        self._transport: Optional[MultiprocessTransport] = None
        self._spec: Optional[SystemSpec] = None
        self._locals: Dict[str, Optional[int]] = {}
        self._maintained = False
        self._last_stats = -1.0

    # -- launch --------------------------------------------------------

    def launch(
        self, transport: MultiprocessTransport, spec: SystemSpec
    ) -> WorkerHierarchy:
        """Spawn one worker per broker, collect bind-reports, broadcast
        the directory, and return the proxy hierarchy."""
        self._transport = transport
        self._spec = spec
        names_by_stage, parent_of = _broker_tree(spec.stage_sizes)
        nodes_by_stage: Dict[int, List[Any]] = {}
        for stage, names in names_by_stage.items():
            nodes_by_stage[stage] = []
            for name in names:
                proxy = BrokerProxy(self, name, stage)
                self._proxies[name] = proxy
                transport.register_remote(proxy)
                nodes_by_stage[stage].append(proxy)
        for name, parent in parent_of.items():
            if parent is None:
                continue
            child, papa = self._proxies[name], self._proxies[parent]
            child.parent = papa
            papa.broker_children.append(child)
            transport.connect(papa, child)

        self._start_control_server(spec.host)
        for name, proxy in self._proxies.items():
            self._spawn(
                WorkerSpec(
                    name=name,
                    stage=proxy.stage,
                    system=spec,
                    control_port=self._control_port,
                )
            )
        self._await_hellos(list(self._proxies))
        self.broadcast_directory()
        return WorkerHierarchy(nodes_by_stage, self)

    def _start_control_server(self, host: str) -> None:
        async def _start() -> asyncio.AbstractServer:
            return await asyncio.start_server(self._on_control_connection, host, 0)

        self._control_server = self._loop.run_until_complete(_start())
        self._control_port = self._control_server.sockets[0].getsockname()[1]

    async def _on_control_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        line = await reader.readline()
        if not line:
            writer.close()
            return
        try:
            hello = json.loads(line.decode(_ENCODING))
        except ValueError:
            writer.close()
            return
        future = self._pending_hello.pop(hello.get("name"), None)
        if future is None or future.done():
            writer.close()
            return
        future.set_result((hello, reader, writer))

    def _spawn(self, wspec: WorkerSpec) -> None:
        handle = self._workers.get(wspec.name)
        if handle is None:
            handle = self._workers[wspec.name] = _WorkerHandle(
                wspec.name, wspec.stage
            )
        self._pending_hello[wspec.name] = self._loop.create_future()
        process = _SPAWN.Process(
            target=_worker_main, args=(wspec,), daemon=True, name=f"broker-{wspec.name}"
        )
        process.start()
        handle.process = process
        handle.reader = None
        handle.writer = None

    def _await_hellos(self, names: List[str]) -> None:
        async def _collect() -> None:
            futures = {name: self._pending_hello[name] for name in names}
            await asyncio.wait_for(
                asyncio.gather(*futures.values()), self.hello_timeout
            )
            for name, future in futures.items():
                hello, reader, writer = future.result()
                handle = self._workers[name]
                handle.reader = reader
                handle.writer = writer
                handle.port = hello.get("port")
                handle.request_id = 0
                self._transport.set_remote_port(name, handle.port)

        self._loop.run_until_complete(_collect())

    # -- control RPC ---------------------------------------------------

    def owns_worker(self, name: str) -> bool:
        return name in self._workers

    def worker(self, name: str) -> _WorkerHandle:
        return self._workers[name]

    def call(
        self, name: str, op: str, timeout: Optional[float] = None, **kw: Any
    ) -> Dict[str, Any]:
        """One synchronous control round-trip to a worker."""
        handle = self._workers[name]
        return self._loop.run_until_complete(
            self._call_async(handle, op, timeout, **kw)
        )

    async def _call_async(
        self,
        handle: _WorkerHandle,
        op: str,
        timeout: Optional[float] = None,
        **kw: Any,
    ) -> Dict[str, Any]:
        if handle.writer is None or handle.reader is None:
            raise ConnectionError(f"no control channel to {handle.name!r}")
        async with handle.lock:
            handle.request_id += 1
            request = dict(kw)
            request["op"] = op
            request["id"] = handle.request_id
            handle.writer.write(
                (json.dumps(request) + "\n").encode(_ENCODING)
            )
            await handle.writer.drain()
            line = await asyncio.wait_for(
                handle.reader.readline(), timeout or self.control_timeout
            )
            if not line:
                raise ConnectionError(f"control channel to {handle.name!r} closed")
            return json.loads(line.decode(_ENCODING))

    def broadcast(self, op: str, **kw: Any) -> Dict[str, Dict[str, Any]]:
        """Send ``op`` to every live worker; dead workers are skipped."""
        replies: Dict[str, Dict[str, Any]] = {}
        for name, handle in self._workers.items():
            if not handle.alive:
                continue
            try:
                replies[name] = self.call(name, op, **kw)
            except (ConnectionError, asyncio.TimeoutError, OSError):
                continue
        return replies

    def _directory(self) -> List[Dict[str, Any]]:
        entries = [
            {"name": name, "port": handle.port, "stage": handle.stage}
            for name, handle in self._workers.items()
        ]
        entries.extend(
            {"name": name, "port": port, "stage": None}
            for name, port in self._locals.items()
        )
        return entries

    def broadcast_directory(self) -> None:
        self.broadcast("register", procs=self._directory())

    def announce_local(self, name: str, port: Optional[int]) -> None:
        """A driver-local process bound ``port``: tell every worker."""
        self._locals[name] = port
        self.broadcast(
            "register", procs=[{"name": name, "port": port, "stage": None}]
        )

    def set_maintenance(self, on: bool) -> None:
        self._maintained = on
        self.broadcast("maintenance", on=on)

    # -- kill / restore ------------------------------------------------

    def kill_worker(self, name: str) -> None:
        """SIGKILL the worker and wait for the OS to confirm it gone."""
        handle = self._workers[name]
        process = handle.process
        if process is not None and process.is_alive():
            process.kill()
        if process is not None:
            process.join(10)
            if process.is_alive():
                raise SimulationError(
                    f"worker {name!r} survived SIGKILL (pid {process.pid})"
                )
        if handle.writer is not None:
            handle.writer.close()
        handle.reader = None
        handle.writer = None
        proxy = self._proxies.get(name)
        if proxy is not None:
            proxy.snapshot = {"alive": False}

    def restore_worker(self, name: str) -> None:
        """Spawn a fresh process for ``name`` on its old data port.

        The incarnation base rises by 2 per restart: peers recorded at
        most ``base + 1`` from the previous incarnation's ChannelReset,
        and the fresh worker announces ``base' + 1 = base + 3``, so its
        resets are never mistaken for stale duplicates.
        """
        handle = self._workers[name]
        if handle.process is not None and handle.process.is_alive():
            raise SimulationError(f"worker {name!r} is still alive")
        handle.restarts += 1
        self._spawn(
            WorkerSpec(
                name=name,
                stage=handle.stage,
                system=self._spec,
                control_port=self._control_port,
                data_port=handle.port or 0,
                incarnation_base=handle.restarts * 2,
                directory={
                    entry["name"]: (entry["port"], entry["stage"])
                    for entry in self._directory()
                },
                maintain=self._maintained,
            )
        )
        self._await_hellos([name])

    # -- driving -------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Timed runs drive the local loop (workers run continuously in
        real time anyway); a drain (``until=None``) additionally
        barriers on every worker reporting idle twice in a row."""
        if until is not None or not self._workers:
            return super().run(until=until, max_events=max_events)
        before = self._processed
        deadline = time.monotonic() + self.idle_timeout
        quiet_rounds = 0
        while quiet_rounds < 2 and time.monotonic() < deadline:
            super().run()
            local_idle = self._inflight == 0 and not self._timer_due_within(
                self.idle_horizon
            )
            workers_idle = True
            for name, handle in self._workers.items():
                if not handle.alive:
                    continue
                try:
                    reply = self.call(name, "drain", budget=1.0)
                except (ConnectionError, asyncio.TimeoutError, OSError):
                    continue
                if not reply.get("idle"):
                    workers_idle = False
            quiet_rounds = (
                quiet_rounds + 1 if (local_idle and workers_idle) else 0
            )
        return self._processed - before

    def run_until(
        self,
        predicate: Any,
        timeout: float,
        poll: float = 0.02,
    ) -> bool:
        """Like the base, but worker stats snapshots refresh (throttled)
        between polls so predicates can read worker-reported state."""
        self.poll_workers()
        if predicate():
            return True
        deadline = self.now + timeout
        while self.now < deadline:
            self._loop.run_until_complete(asyncio.sleep(poll))
            self._maybe_poll_workers()
            if predicate():
                return True
        self.poll_workers()
        return predicate()

    def _maybe_poll_workers(self) -> None:
        if self.now - self._last_stats >= self.stats_interval:
            self.poll_workers()

    def poll_workers(self) -> Dict[str, Dict[str, Any]]:
        """Fetch a stats snapshot from every worker onto its proxy."""
        self._last_stats = self.now
        snapshots: Dict[str, Dict[str, Any]] = {}
        for name, handle in self._workers.items():
            if not handle.alive:
                snapshot: Dict[str, Any] = {"alive": False}
            else:
                try:
                    reply = self.call(name, "stats", timeout=5.0)
                    snapshot = reply.get("stats") or {}
                    snapshot["alive"] = True
                except (ConnectionError, asyncio.TimeoutError, OSError, ValueError):
                    snapshot = {"alive": False}
            proxy = self._proxies.get(name)
            if proxy is not None:
                proxy.snapshot = snapshot
            snapshots[name] = snapshot
        return snapshots

    # -- teardown ------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        for name, handle in self._workers.items():
            if handle.alive:
                try:
                    self.call(name, "stop", timeout=5.0)
                except (ConnectionError, asyncio.TimeoutError, OSError):
                    pass
        for handle in self._workers.values():
            process = handle.process
            if process is None:
                continue
            process.join(5)
            if process.is_alive():
                process.terminate()
                process.join(2)
            if process.is_alive():
                process.kill()
                process.join(2)
            if handle.writer is not None:
                handle.writer.close()
                handle.writer = None
                handle.reader = None
        if self._control_server is not None:
            self._control_server.close()
            self._loop.run_until_complete(self._control_server.wait_closed())
            self._control_server = None
        super().close()

    def __repr__(self) -> str:
        alive = sum(1 for h in self._workers.values() if h.alive)
        return (
            f"MultiprocessRuntime(now={self.now:.3f}, "
            f"workers={alive}/{len(self._workers)})"
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _WorkerTransport(_RemoteRoutingTransport):
    """Worker-side transport: exactly one local endpoint (the owned
    broker); every other name resolves to a remote stand-in.  Lookup is
    forgiving — a name arriving ahead of its directory entry gets a
    portless stand-in that the next ``register`` broadcast fills in."""

    def lookup(self, name: str) -> Process:
        process = self._by_name.get(name)
        if process is None:
            process = RemoteProcess(self.runtime, name)
            self.register_remote(process)
        return process


def _worker_main(spec: WorkerSpec) -> None:
    """Entry point of a broker worker process (spawn target)."""
    _BrokerWorker(spec).run()


class _BrokerWorker:
    """One broker, one asyncio loop, one data server, one control
    connection — the whole lifetime of a worker process."""

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.runtime: Optional[AsyncioRuntime] = None
        self.transport: Optional[_WorkerTransport] = None
        self.node: Optional[Any] = None

    def run(self) -> None:
        self.runtime = AsyncioRuntime()
        try:
            self.runtime._loop.run_until_complete(self._main())
        finally:
            node = self.node
            if node is not None and getattr(node, "log", None) is not None:
                try:
                    node.log.close()
                except Exception:
                    pass
            if self.transport is not None:
                try:
                    self.transport.close()
                except Exception:
                    pass
            try:
                self.runtime.close()
            except Exception:
                pass

    async def _main(self) -> None:
        spec = self.spec
        system = spec.system
        runtime = self.runtime
        transport = self.transport = _WorkerTransport(runtime, host=system.host)
        node = self.node = self._build_node()
        self._wire_topology()
        for name, (port, stage) in spec.directory.items():
            self._register_entry({"name": name, "port": port, "stage": stage})
        endpoint = transport.register(node)
        await self._bind_data_server(endpoint)
        restoring = spec.incarnation_base > 0
        if restoring:
            # True fail-stop recovery: the broker starts with *nothing*
            # in memory.  crash()+restart() runs the identical recovery
            # path the simulator exercises — reload the on-disk log,
            # ChannelReset the neighbours, schedule the replay request.
            node.incarnation = spec.incarnation_base
            node.crash()
            node.restart()
        if spec.maintain:
            node.start_maintenance()
        reader, writer = await asyncio.open_connection(
            system.host, spec.control_port
        )
        hello = {"name": spec.name, "port": endpoint.port, "pid": os.getpid()}
        writer.write((json.dumps(hello) + "\n").encode(_ENCODING))
        await writer.drain()
        await self._control_loop(reader, writer)

    def _build_node(self) -> Any:
        from repro.filters.compiled import CompiledMatchEngine
        from repro.filters.index import CountingIndex
        from repro.filters.table import FilterTable
        from repro.overlay.node import BrokerNode
        from repro.sim.rng import RngRegistry

        spec = self.spec
        system = spec.system
        engine_factory = {
            "index": CountingIndex,
            "table": FilterTable,
            "compiled": CompiledMatchEngine,
        }[system.engine]
        restoring = spec.incarnation_base > 0
        node = BrokerNode(
            self.runtime,
            self.transport,
            name=spec.name,
            stage=spec.stage,
            ttl=system.ttl,
            engine_factory=engine_factory,
            rng=RngRegistry(system.seed).stream(f"node/{spec.name}"),
            wildcard_routing=system.wildcard_routing,
            compact=system.compact,
            cache=system.cache,
            batch=system.batch,
            aggregate=system.aggregate,
            reliable=system.reliable,
            tracer=EventTracer(enabled=False),
            flow=system.flow,
            service_rate=system.service_rate,
            service_batch=system.service_batch,
            # On restore the fresh EventLog a normal construction would
            # open must NOT clobber the on-disk segments we are about to
            # recover from: build logless and let restart() reload.
            log_config=None if restoring else system.log,
        )
        if system.log is not None and system.log.directory:
            node.recover_log_from_disk = True
            if restoring:
                node.log_config = system.log
        return node

    def _wire_topology(self) -> None:
        """Rebuild the tree with this broker real and everyone else a
        proxy, preserving build_hierarchy's child order (placement
        round-robins over ``broker_children``, so order is protocol)."""
        spec = self.spec
        names_by_stage, parent_of = _broker_tree(spec.system.stage_sizes)
        members: Dict[str, Process] = {spec.name: self.node}
        for stage, names in names_by_stage.items():
            for name in names:
                if name == spec.name:
                    continue
                proxy = BrokerProxy(self.runtime, name, stage)
                members[name] = proxy
                self.transport.register_remote(proxy)
        for name, parent in parent_of.items():
            if parent is None:
                continue
            child, papa = members[name], members[parent]
            child.parent = papa
            papa.broker_children.append(child)
            self.transport.connect(papa, child)

    async def _bind_data_server(self, endpoint: Any) -> None:
        """Bind the broker's data server; on restore the fixed old port
        may still be in a lingering close, so back off and retry."""
        endpoint.port = self.spec.data_port or None
        delay = 0.02
        while True:
            try:
                await self.transport._ensure_server(endpoint)
                return
            except OSError:
                if delay > 2.0:
                    raise
                endpoint.server = None
                endpoint.transition(INIT)
                await asyncio.sleep(delay)
                delay *= 2

    # -- control ops ---------------------------------------------------

    async def _control_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return  # driver gone; nothing to serve anyone for
            try:
                message = json.loads(line.decode(_ENCODING))
            except ValueError:
                continue
            op = message.get("op")
            reply: Dict[str, Any] = {"id": message.get("id"), "ok": True}
            stop = False
            try:
                if op == "register":
                    for entry in message.get("procs", []):
                        self._register_entry(entry)
                elif op == "maintenance":
                    if message.get("on"):
                        self.node.start_maintenance()
                    else:
                        self.node.stop_maintenance()
                elif op == "drain":
                    reply["idle"] = await self._await_idle(
                        float(message.get("budget", 1.0))
                    )
                elif op == "stats":
                    reply["stats"] = self._snapshot()
                elif op == "ping":
                    reply["now"] = self.runtime.now
                elif op == "stop":
                    stop = True
                else:
                    reply = {
                        "id": message.get("id"),
                        "ok": False,
                        "error": f"unknown op {op!r}",
                    }
            except Exception as exc:
                reply = {
                    "id": message.get("id"),
                    "ok": False,
                    "error": repr(exc),
                }
            writer.write((json.dumps(reply) + "\n").encode(_ENCODING))
            await writer.drain()
            if stop:
                return

    def _register_entry(self, entry: Dict[str, Any]) -> None:
        name = entry.get("name")
        if not name or name == self.spec.name:
            return
        port = entry.get("port")
        stage = entry.get("stage")
        process = self.transport._by_name.get(name)
        if process is None:
            process = (
                BrokerProxy(self.runtime, name, stage)
                if stage
                else RemoteProcess(self.runtime, name)
            )
            self.transport.register_remote(process, port)
        elif port is not None:
            self.transport.set_remote_port(name, port)

    async def _await_idle(self, budget: float) -> bool:
        runtime = self.runtime
        deadline = runtime.now + budget
        settle = 0
        while runtime.now < deadline:
            await asyncio.sleep(runtime._idle_poll)
            if runtime._inflight == 0 and not runtime._timer_due_within(
                runtime.idle_horizon
            ):
                settle += 1
                if settle >= runtime._idle_settle:
                    return True
            else:
                settle = 0
        return False

    def _snapshot(self) -> Dict[str, Any]:
        node = self.node
        runtime = self.runtime
        stats = self.transport.stats
        log = getattr(node, "log", None)
        return {
            "name": node.name,
            "stage": node.stage,
            "pid": os.getpid(),
            "now": runtime.now,
            "processed": runtime.processed_events,
            "inflight": runtime._inflight,
            "crashed": node.crashed,
            "incarnation": node.incarnation,
            "queue_depth": node.queue_depth(),
            "table_size": len(node.table),
            "log_records": len(log) if log is not None else None,
            "log_next_offset": log.next_offset if log is not None else None,
            "events_shed": node.counters.events_shed,
            "net": {
                "total_messages": stats.total_messages,
                "total_bytes": stats.total_bytes,
                "dropped_messages": stats.dropped_messages,
                "dropped_bytes": stats.dropped_bytes,
                "in_flight": stats.in_flight,
                "peak_in_flight": stats.peak_in_flight,
            },
            "errors": list(self.transport.errors),
        }
