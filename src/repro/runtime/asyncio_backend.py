"""Real-runtime backend: an asyncio executor and a TCP transport.

This module is the second implementation of the :mod:`repro.runtime.base`
protocols.  :class:`AsyncioRuntime` maps the simulator's timer surface
onto an asyncio event loop (``schedule`` → ``call_at``, ``now`` → loop
time since construction), and :class:`TcpTransport` replaces the
simulated link model with real localhost TCP sockets: every registered
process gets its own listening server and an FSM-tracked endpoint, and
``send`` writes length-prefixed JSON frames instead of scheduling a
delivery event.

Framing protocol (one frame per message)::

    4 bytes   payload length, big-endian
    N bytes   JSON: {"v": 1, "src": <sender name>,
                     "kind": <message class name>,
                     "body": <base64(pickle of the message)>}

Messages are the same dataclasses the simulator delivers by reference
(:mod:`repro.overlay.messages`), and event payloads inside them are the
same pre-pickled :class:`~repro.events.serialization.Envelope` bodies —
the wire format reuses ``events/serialization.py`` wholesale.  The one
wrinkle is that several control messages carry direct
:class:`~repro.sim.kernel.Process` references (``JoinAt.node``,
``SubscriptionRequest.subscriber``, ...).  Those are serialized as
*name references* via a pickler ``persistent_id`` hook and resolved
against the transport's registry on receive, so identity survives the
wire without pickling a whole broker.

Endpoint FSM (see DESIGN §13)::

    INIT -> BINDING -> LISTENING -> SERVING
                          |  ^
                          v  |
              CRASHED -> RECOVERING
    (any) -> STOPPED

``kill`` closes the endpoint's server and connections mid-flight (frames
to it are dropped and counted, like the simulator's crash gate);
``restore`` rebinds the same port, replays the broker's on-disk JSONL
log if configured, and lets the normal ChannelReset/renewal recovery
machinery run over the reopened sockets.
"""

import asyncio
import base64
import io
import json
import pickle
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.tracing import EventTracer
from repro.sim.kernel import Process, SimulationError
from repro.sim.network import Link, NetworkStats, _default_sizer

FRAME_VERSION = 1
_HEADER_SIZE = 4

# Endpoint FSM states.
INIT = "init"
BINDING = "binding"
LISTENING = "listening"
SERVING = "serving"
CRASHED = "crashed"
RECOVERING = "recovering"
STOPPED = "stopped"


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------


class _ProcessRefPickler(pickle.Pickler):
    """Serialize :class:`Process` references as stable name refs."""

    def persistent_id(self, obj: Any) -> Optional[str]:
        if isinstance(obj, Process):
            return obj.name
        return None


class _ProcessRefUnpickler(pickle.Unpickler):
    def __init__(self, file: io.BytesIO, resolve: Callable[[str], Process]):
        super().__init__(file)
        self._resolve = resolve

    def persistent_load(self, pid: str) -> Process:
        return self._resolve(pid)


def encode_frame(src_name: str, message: Any) -> bytes:
    """One message as the JSON frame payload (without the length prefix)."""
    buffer = io.BytesIO()
    _ProcessRefPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(message)
    return json.dumps(
        {
            "v": FRAME_VERSION,
            "src": src_name,
            "kind": type(message).__name__,
            "body": base64.b64encode(buffer.getvalue()).decode("ascii"),
        },
        sort_keys=True,
    ).encode("utf-8")


def decode_frame(
    payload: bytes, resolve: Callable[[str], Process]
) -> Tuple[str, Any]:
    """Parse a frame payload back into ``(sender name, message)``."""
    obj = json.loads(payload.decode("utf-8"))
    if obj.get("v") != FRAME_VERSION:
        raise ValueError(f"unsupported frame version {obj.get('v')!r}")
    buffer = io.BytesIO(base64.b64decode(obj["body"]))
    message = _ProcessRefUnpickler(buffer, resolve).load()
    return obj["src"], message


# ----------------------------------------------------------------------
# Timers
# ----------------------------------------------------------------------


class AsyncioTimer:
    """One-shot timer satisfying :class:`repro.runtime.base.Timer`."""

    __slots__ = ("runtime", "time", "callback", "args", "cancelled", "_handle")

    def __init__(
        self,
        runtime: "AsyncioRuntime",
        time: float,
        callback: Callable[..., None],
        args: tuple,
    ):
        self.runtime = runtime
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._handle = runtime._loop.call_at(runtime._t0 + time, self._fire)
        runtime._timers.add(self)

    def _fire(self) -> None:
        self.runtime._timers.discard(self)
        if self.cancelled:
            return
        self.runtime._processed += 1
        self.callback(*self.args)

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._handle.cancel()
            self.runtime._timers.discard(self)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"AsyncioTimer(t={self.time!r}, {state})"


class AsyncioRecurringTimer:
    """Recurring timer mirroring :class:`repro.sim.kernel.RecurringHandle`."""

    __slots__ = ("runtime", "interval", "callback", "args", "cancelled", "time", "_handle")

    def __init__(
        self,
        runtime: "AsyncioRuntime",
        interval: float,
        callback: Callable[..., None],
        args: tuple,
    ):
        self.runtime = runtime
        self.interval = interval
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.time = runtime.now + interval
        self._handle = runtime._loop.call_at(runtime._t0 + self.time, self._fire)
        runtime._timers.add(self)

    def _fire(self) -> None:
        if self.cancelled:
            return
        # Reschedule first, like the sim's RecurringHandle: the callback
        # sees the next tick armed and may cancel to stop the chain.
        self.time = self.runtime.now + self.interval
        self._handle = self.runtime._loop.call_at(
            self.runtime._t0 + self.time, self._fire
        )
        self.runtime._processed += 1
        self.callback(*self.args)

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._handle.cancel()
            self.runtime._timers.discard(self)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"AsyncioRecurringTimer(every={self.interval!r}, {state})"


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------


class AsyncioRuntime:
    """Wall-clock executor satisfying :class:`repro.runtime.base.Executor`.

    The loop is owned, private, and driven synchronously: ``run`` /
    ``run_until`` block the calling thread while the loop services
    timers and sockets, exactly as ``Simulator.run`` blocks while
    popping its heap.  ``now`` is seconds since construction, so
    published_at stamps and log append times stay small positive floats
    on both backends.
    """

    #: ``run(until=None)`` gives up after this many wall seconds even if
    #: the system never goes quiet (retransmitting to a dead peer, say).
    idle_timeout = 30.0
    #: The system counts as quiet when nothing is in flight and no timer
    #: is due within this horizon (covers retransmit timers re-arming).
    idle_horizon = 0.05
    _idle_poll = 0.01
    _idle_settle = 3

    def __init__(self) -> None:
        self._loop = asyncio.new_event_loop()
        self._t0 = self._loop.time()
        self._processed = 0
        self._timers: set = set()
        #: Frames sent but not yet dispatched or dropped (maintained by
        #: the transport); the wire-occupancy half of the idle check.
        self._inflight = 0
        self._closed = False

    @property
    def now(self) -> float:
        return self._loop.time() - self._t0

    @property
    def processed_events(self) -> int:
        """Timer fires plus dispatched frames (cancelled timers excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        return len(self._timers)

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    # -- timer surface (Executor protocol) -----------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> AsyncioTimer:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return AsyncioTimer(self, self.now + delay, callback, args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> AsyncioTimer:
        return AsyncioTimer(self, time, callback, args)

    def defer(self, callback: Callable[..., None], *args: Any) -> AsyncioTimer:
        return AsyncioTimer(self, self.now, callback, args)

    def every(
        self, interval: float, callback: Callable[..., None], *args: Any
    ) -> AsyncioRecurringTimer:
        if interval <= 0:
            raise SimulationError(
                f"recurring interval must be positive, got {interval}"
            )
        return AsyncioRecurringTimer(self, interval, callback, args)

    # -- driving the loop ----------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drive the loop: until wall time ``until``, or until idle.

        ``max_events`` is accepted for signature parity with the
        simulator but cannot bound a wall-clock loop mid-flight; it is
        ignored.  Returns the number of events processed by this call.
        """
        if self._closed:
            raise SimulationError("runtime is closed")
        before = self._processed
        if until is not None:
            remaining = until - self.now
            if remaining > 0:
                self._loop.run_until_complete(asyncio.sleep(remaining))
        else:
            self._loop.run_until_complete(self._drive_idle())
        return self._processed - before

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        poll: float = 0.02,
    ) -> bool:
        """Drive the loop until ``predicate()`` holds; False on timeout.

        The predicate runs between loop slices (never concurrently with
        callbacks), so it may inspect process state freely.
        """
        if predicate():
            return True
        deadline = self.now + timeout
        while self.now < deadline:
            self._loop.run_until_complete(asyncio.sleep(poll))
            if predicate():
                return True
        return predicate()

    async def _drive_idle(self) -> None:
        deadline = self.now + self.idle_timeout
        settle = 0
        while self.now < deadline:
            await asyncio.sleep(self._idle_poll)
            if self._inflight == 0 and not self._timer_due_within(self.idle_horizon):
                settle += 1
                if settle >= self._idle_settle:
                    return
            else:
                settle = 0

    def _timer_due_within(self, horizon: float) -> bool:
        cutoff = self.now + horizon
        return any(
            not timer.cancelled and timer.time <= cutoff
            for timer in self._timers
        )

    def close(self) -> None:
        """Cancel outstanding work and close the loop for good."""
        if self._closed:
            return
        self._closed = True
        for timer in list(self._timers):
            timer.cancel()
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.close()

    def __repr__(self) -> str:
        return f"AsyncioRuntime(now={self.now:.3f}, processed={self._processed})"


# ----------------------------------------------------------------------
# TCP transport
# ----------------------------------------------------------------------


class _Endpoint:
    """One process's socket presence: server, connections, FSM state."""

    __slots__ = (
        "process",
        "server",
        "port",
        "state",
        "history",
        "outbound",
        "inbound",
        "teardown",
        "_lock",
    )

    def __init__(self, process: Process):
        self.process = process
        self.server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        self.state = INIT
        self.history: List[str] = [INIT]
        #: dst name -> StreamWriter for frames this process sends.
        self.outbound: Dict[str, asyncio.StreamWriter] = {}
        #: StreamWriters of accepted inbound connections (for teardown).
        self.inbound: List[asyncio.StreamWriter] = []
        #: In-flight teardown task after a kill; restore awaits it so the
        #: old server socket is fully closed before rebinding the port.
        self.teardown: Optional["asyncio.Task"] = None
        self._lock: Optional[asyncio.Lock] = None

    def transition(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.history.append(state)


class TcpTransport:
    """Message fabric over real localhost TCP sockets.

    Satisfies :class:`repro.runtime.base.Transport` with the same
    ``send(src, dst, message)`` surface as the simulated
    :class:`~repro.sim.network.Network`, so overlay code cannot tell
    them apart.  Per-pair frame order is preserved (one serialized
    writer chain per directed pair); cross-pair order is whatever the
    loop and the kernel make of it — which is the point.
    """

    def __init__(
        self,
        runtime: AsyncioRuntime,
        default_latency: Optional[float] = None,
        sizer: Callable[[Any], int] = _default_sizer,
        tracer: Optional[EventTracer] = None,
        host: str = "127.0.0.1",
    ):
        self.runtime = runtime
        self.host = host
        #: Unused for timing (the kernel schedules real packets); kept
        #: for constructor parity with Network.
        self.default_latency = default_latency
        self.sizer = sizer
        self.stats = NetworkStats()
        self.tracer = tracer if tracer is not None else EventTracer(enabled=False)
        self._endpoints: Dict[str, _Endpoint] = {}
        self._by_name: Dict[str, Process] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._pair_locks: Dict[Tuple[str, str], asyncio.Lock] = {}
        #: In-flight frame sizes per directed pair — the canonical wire
        #: occupancy registry.  Every frame that increments
        #: ``runtime._inflight`` pushes an entry here, and exactly one of
        #: the three exits pops it: dispatch at the receiver, a failed
        #: write, or the kill-teardown reconciliation (a frame written
        #: into a killed endpoint's socket buffer is never read, so
        #: without the teardown sweep the counter leaks and ``run()``
        #: burns its full idle timeout).
        self._wire: Dict[Tuple[str, str], Deque[int]] = {}
        #: Dispatch/codec failures (tests assert this stays empty).
        self.errors: List[str] = []
        self._closed = False

    # -- registry ------------------------------------------------------

    def register(self, process: Process) -> _Endpoint:
        """Make a process addressable (idempotent; names must be unique)."""
        known = self._by_name.get(process.name)
        if known is not None and known is not process:
            raise SimulationError(
                f"duplicate process name {process.name!r} on this transport"
            )
        self._by_name[process.name] = process
        endpoint = self._endpoints.get(process.name)
        if endpoint is None:
            endpoint = _Endpoint(process)
            self._endpoints[process.name] = endpoint
        return endpoint

    def connect(self, a: Process, b: Process, latency: Optional[float] = None) -> None:
        """Declare a link: registers both ends (latency is the kernel's)."""
        self.register(a)
        self.register(b)
        self._link(a, b)
        self._link(b, a)

    def lookup(self, name: str) -> Process:
        process = self._by_name.get(name)
        if process is None:
            raise ValueError(f"unknown process reference {name!r}")
        return process

    def endpoint(self, process: Process) -> _Endpoint:
        return self._endpoints[process.name]

    def _link(self, src: Process, dst: Process) -> Link:
        key = (src.name, dst.name)
        link = self._links.get(key)
        if link is None:
            link = Link(src, dst, 0.0)
            self._links[key] = link
        return link

    def link(self, src: Process, dst: Process) -> Optional[Link]:
        return self._links.get((src.name, dst.name))

    # -- sending -------------------------------------------------------

    def send(self, src: Process, dst: Process, message: Any) -> None:
        """Frame and ship one message; never blocks, never delivers
        synchronously (the frame arrives in a later loop round)."""
        if self._closed:
            return
        self.register(src)
        self.register(dst)
        link = self._link(src, dst)
        payload = encode_frame(src.name, message)
        size = len(payload) + _HEADER_SIZE
        if src.crashed:
            self.stats.record_drop(link, size)
            return
        self.stats.record_scheduled()
        self.runtime._inflight += 1
        wire = self._wire.get((src.name, dst.name))
        if wire is None:
            wire = self._wire[(src.name, dst.name)] = deque()
        wire.append(size)
        self.runtime._loop.create_task(
            self._deliver(src.name, dst.name, payload, size)
        )

    async def _deliver(
        self, src_name: str, dst_name: str, payload: bytes, size: int
    ) -> None:
        """Write one frame over the (src, dst) connection, in order.

        The per-pair lock serializes the open-or-reuse + write sequence,
        so frames of one directed pair hit the socket in send order.  A
        dead peer (killed endpoint, refused connect, reset mid-write)
        costs the frame: it is dropped and counted, matching the
        simulator's crash-gate semantics.
        """
        pair = (src_name, dst_name)
        lock = self._pair_locks.get(pair)
        if lock is None:
            lock = self._pair_locks[pair] = asyncio.Lock()
        frame = size.to_bytes(_HEADER_SIZE, "big") + payload
        try:
            async with lock:
                # A cached connection can be a silently dead socket (the
                # peer was killed and restarted since the last frame), so
                # one failed write earns one reconnect.  Only a failure on
                # a *fresh* connection is a genuine dead-peer drop.
                for attempt in (0, 1):
                    writer = await self._writer_for(src_name, dst_name)
                    try:
                        writer.write(frame)
                        await writer.drain()
                        self._frame_written(src_name, dst_name, size)
                        return
                    except (ConnectionError, OSError):
                        self._invalidate_writer(src_name, dst_name)
                        if attempt:
                            raise
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self._drop_in_flight(src_name, dst_name, size)
            self._invalidate_writer(src_name, dst_name)
        except asyncio.CancelledError:
            self._drop_in_flight(src_name, dst_name, size)
            raise

    def _frame_written(self, src_name: str, dst_name: str, size: int) -> None:
        """Hook: one frame fully handed to the kernel for ``dst``.

        No-op here — in-process delivery settles at dispatch.  Subclasses
        whose receivers live in *other processes* (the multiprocess
        backend's remote endpoints) settle the frame at write success
        instead, since the local loop will never see the dispatch.
        """

    def _invalidate_writer(self, src_name: str, dst_name: str) -> None:
        src_ep = self._endpoints.get(src_name)
        if src_ep is not None:
            stale = src_ep.outbound.pop(dst_name, None)
            if stale is not None:
                stale.close()

    def _settle(self, src_name: str, dst_name: str) -> bool:
        """Claim one in-flight frame on the pair: pop its wire entry and
        decrement the occupancy counters.  Returns False when the frame
        was already settled (the kill-teardown reconciliation got there
        first), in which case the caller must not account it again."""
        wire = self._wire.get((src_name, dst_name))
        if not wire:
            return False
        wire.popleft()
        self.stats.record_arrival()
        self.runtime._inflight -= 1
        return True

    def _drop_in_flight(self, src_name: str, dst_name: str, size: int) -> None:
        if self._settle(src_name, dst_name):
            self.stats.record_drop(self._links.get((src_name, dst_name)), size)

    async def _writer_for(
        self, src_name: str, dst_name: str
    ) -> asyncio.StreamWriter:
        dst_ep = self._endpoints[dst_name]
        await self._ensure_server(dst_ep)
        if dst_ep.port is None:
            raise ConnectionRefusedError(f"{dst_name} has no bound port")
        src_ep = self._endpoints[src_name]
        writer = src_ep.outbound.get(dst_name)
        if writer is None or writer.is_closing():
            _, writer = await asyncio.open_connection(self.host, dst_ep.port)
            src_ep.outbound[dst_name] = writer
        return writer

    # -- receiving -----------------------------------------------------

    async def _ensure_server(self, endpoint: _Endpoint) -> None:
        """Bind the endpoint's listening server on first contact.

        Lazy binding happens only from INIT: every later rebinding is
        owned by :meth:`restore`, and racing it here would steal the
        port out from under the recovering endpoint (EADDRINUSE).
        """
        if endpoint.state not in (INIT, BINDING):
            return
        if endpoint._lock is None:
            endpoint._lock = asyncio.Lock()
        async with endpoint._lock:
            if endpoint.server is not None or endpoint.state != INIT:
                return
            endpoint.transition(BINDING)
            endpoint.server = await asyncio.start_server(
                lambda reader, writer: self._serve_client(endpoint, reader, writer),
                self.host,
                endpoint.port or 0,
            )
            endpoint.port = endpoint.server.sockets[0].getsockname()[1]
            endpoint.transition(LISTENING)

    async def _serve_client(
        self,
        endpoint: _Endpoint,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Per-inbound-connection read loop: frame in, dispatch."""
        endpoint.inbound.append(writer)
        try:
            while True:
                header = await reader.readexactly(_HEADER_SIZE)
                size = int.from_bytes(header, "big")
                payload = await reader.readexactly(size - _HEADER_SIZE)
                self._dispatch(endpoint, payload, size)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Only runtime teardown cancels reader tasks; ending cleanly
            # here keeps the loop's exception reporter quiet.
            pass
        finally:
            if writer in endpoint.inbound:
                endpoint.inbound.remove(writer)
            writer.close()

    def _dispatch(self, endpoint: _Endpoint, payload: bytes, size: int) -> None:
        """One frame arrived: decode, account, hand to ``receive``."""
        process = endpoint.process
        try:
            src_name, message = decode_frame(payload, self.lookup)
        except Exception as exc:  # codec failure: surface, drop the frame
            # The sender is unknowable without a decoded frame; settle an
            # arbitrary in-flight entry bound for this endpoint so the
            # occupancy registry stays consistent with the counter.
            for (src, dst), wire in self._wire.items():
                if dst == process.name and wire:
                    self._settle(src, dst)
                    break
            else:
                self.stats.record_arrival()
                self.runtime._inflight -= 1
            self.errors.append(f"decode for {process.name}: {exc!r}")
            self.stats.record_drop(None, size)
            return
        settled = self._settle(src_name, process.name)
        link = self._links.get((src_name, process.name))
        if process.crashed or endpoint.state == CRASHED:
            # The crash gate on the receiving side: a frame that raced a
            # still-open socket into a crashed process is lost.
            if settled:
                self.stats.record_drop(link, size)
            return
        if link is None:
            sender = self._by_name.get(src_name)
            if sender is not None:
                link = self._link(sender, process)
        if link is not None:
            self.stats.record(link, size)
        if endpoint.state == LISTENING:
            endpoint.transition(SERVING)
        self.runtime._processed += 1
        try:
            process.receive(message, self._by_name.get(src_name))
        except Exception as exc:  # keep the read loop alive; tests check
            self.errors.append(f"{process.name} receive: {exc!r}")

    # -- crash lifecycle (the endpoint FSM's externally driven edges) --

    def kill(self, process: Process) -> None:
        """Fail-stop the process *and* its socket presence.

        ``process.crash()`` runs synchronously (soft state is wiped, the
        on-disk log closed); the server teardown lands on the loop and
        completes in the next driven round.  Peers' cached connections
        die with it — their next frame is dropped and counted.

        Idempotent: killing an already-crashed endpoint is a no-op.  A
        second ``crash()`` would wipe nothing new, but overwriting
        ``endpoint.teardown`` would orphan the first teardown task and
        let a later ``restore`` race the still-closing server socket.
        """
        endpoint = self._endpoints[process.name]
        if endpoint.state == CRASHED:
            return
        process.crash()
        endpoint.transition(CRASHED)
        endpoint.teardown = self.runtime._loop.create_task(
            self._teardown_endpoint(endpoint)
        )

    async def _teardown_endpoint(self, endpoint: _Endpoint) -> None:
        server, endpoint.server = endpoint.server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for writer in endpoint.inbound[:]:
            writer.close()
        endpoint.inbound.clear()
        for writer in endpoint.outbound.values():
            writer.close()
        endpoint.outbound.clear()
        # Peers' cached connections to this endpoint are now half-dead
        # sockets whose first write would "succeed" into the void (the
        # RST lands after the kernel accepts the frame).  Dropping them
        # here makes the next send open a fresh connection, which either
        # reaches the restarted server or fails loudly as a real drop.
        for peer in self._endpoints.values():
            stale = peer.outbound.pop(endpoint.process.name, None)
            if stale is not None:
                stale.close()
        # Frames already written into this endpoint's socket buffers will
        # never be read: settle them as drops now, or the runtime's
        # in-flight counter leaks and ``run()`` cannot detect idleness.
        self._reconcile_in_flight(endpoint.process.name)

    def _reconcile_in_flight(self, dst_name: str) -> None:
        """Book every unsettled frame bound for ``dst_name`` as a drop."""
        for (src, dst), wire in self._wire.items():
            if dst != dst_name:
                continue
            link = self._links.get((src, dst))
            while wire:
                size = wire.popleft()
                self.stats.record_arrival()
                self.runtime._inflight -= 1
                self.stats.record_drop(link, size)

    def restore(self, process: Process) -> None:
        """Bring a killed process back: rebind the same port, then run
        the normal restart recovery (ChannelReset, renewals, and — for
        brokers configured for it — the on-disk log reload)."""
        endpoint = self._endpoints[process.name]
        if endpoint.state != CRASHED:
            raise SimulationError(
                f"cannot restore {process.name!r}: endpoint state is "
                f"{endpoint.state!r}, not {CRASHED!r} — restoring a live "
                f"process would start a second server on its port"
            )
        endpoint.transition(RECOVERING)

        async def _restore() -> None:
            if endpoint.teardown is not None:
                # The kill's socket teardown may still be in flight; the
                # port cannot be rebound until the old server is closed.
                await endpoint.teardown
                endpoint.teardown = None
            delay = 0.01
            while True:
                try:
                    endpoint.server = await asyncio.start_server(
                        lambda reader, writer: self._serve_client(
                            endpoint, reader, writer
                        ),
                        self.host,
                        endpoint.port or 0,
                    )
                    break
                except OSError:
                    # Lingering close on the old socket; back off briefly.
                    if delay > 2.0:
                        raise
                    await asyncio.sleep(delay)
                    delay *= 2
            endpoint.port = endpoint.server.sockets[0].getsockname()[1]
            endpoint.transition(LISTENING)
            process.restart()

        self.runtime._loop.create_task(_restore())

    # -- teardown ------------------------------------------------------

    def close(self) -> None:
        """Stop every endpoint and refuse further sends (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.runtime._loop.is_closed():
            return

        async def _close_all() -> None:
            for endpoint in self._endpoints.values():
                await self._teardown_endpoint(endpoint)
                endpoint.transition(STOPPED)

        self.runtime._loop.run_until_complete(_close_all())

    def __repr__(self) -> str:
        return (
            f"TcpTransport(endpoints={len(self._endpoints)}, "
            f"messages={self.stats.total_messages})"
        )
