"""Structural protocols every execution backend satisfies.

These are the *entire* contract between the overlay/flow/log layers and
their execution substrate.  Broker, publisher, and subscriber code only
ever touches:

- ``self.sim.now`` — a monotone clock (:class:`Clock`);
- ``self.sim.schedule / schedule_at / defer / every`` — timer arming
  (:class:`Executor`), each returning a cancellable :class:`Timer`;
- ``self.network.send(src, dst, message)`` — fire-and-forget message
  passing (:class:`Transport`), delivered later via
  ``dst.receive(message, src)``.

The protocols are deliberately *structural* (:class:`typing.Protocol`):
:class:`repro.sim.kernel.Simulator` and :class:`repro.sim.network.
Network` conform without importing this module, and so do
:class:`repro.runtime.asyncio_backend.AsyncioRuntime` and
:class:`~repro.runtime.asyncio_backend.TcpTransport`.  That is the
whole trick by which the same overlay code runs deterministically under
the simulator and at wall-clock speed over real sockets.

Nothing here may import from :mod:`repro.sim` or :mod:`repro.overlay`;
this module sits below both.
"""

from typing import Any, Callable, Optional, Protocol, runtime_checkable


@runtime_checkable
class Timer(Protocol):
    """A cancellable scheduled callback (one-shot or recurring)."""

    cancelled: bool

    def cancel(self) -> None:
        """Tombstone the timer; a cancelled timer never fires again."""
        ...


@runtime_checkable
class Clock(Protocol):
    """A monotone clock.  Simulated seconds on the sim backend, seconds
    since runtime construction on the asyncio backend."""

    @property
    def now(self) -> float:
        ...


@runtime_checkable
class Executor(Clock, Protocol):
    """A clock plus timer scheduling plus a way to drive the loop.

    ``run`` blocks until the backend is quiescent (or ``until`` is
    reached): the simulator pops its heap dry; the asyncio backend spins
    its event loop until sockets and timers go idle.
    """

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Timer:
        ...

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Timer:
        ...

    def defer(self, callback: Callable[..., None], *args: Any) -> Timer:
        ...

    def every(
        self, interval: float, callback: Callable[..., None], *args: Any
    ) -> Timer:
        ...

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        ...


@runtime_checkable
class Transport(Protocol):
    """Asynchronous message passing between named processes.

    ``send`` never blocks and never delivers synchronously: the message
    reaches ``dst.receive(message, src)`` in a later executor round (the
    sim schedules a delivery event after the link latency; the asyncio
    backend writes a frame to a TCP socket).  ``connect`` declares a
    link; backends may use it for latency/registration or ignore it.
    """

    def send(self, src: Any, dst: Any, message: Any) -> None:
        ...

    def connect(self, src: Any, dst: Any, latency: Optional[float] = None) -> None:
        ...
