"""The paper's simulation workload: bibliographic data (Section 5.2).

"The events generated represent a simple form of bibliographic data.
The attributes of an event are: author, conference, year and title."
The generality order (most general first) is ``year`` (smallest domain),
then ``conference``, ``author``, ``title`` — matching the paper's
per-stage filter formats (stage 3 filters on year only, stage 2 on
year+conference, stage 1 adds author, stage 0 all four).

The workload first materializes a universe of :class:`BibRecord` "papers";
events sample that universe (Zipf-skewed: popular papers are announced
more), and subscriptions pick a record and subscribe to its four
attribute values.  The matching rate observed by subscribers is then
governed by how many records share a (year, conference, author) triple —
a tunable, realistic correlation knob (the paper's own constants are
unpublished; see EXPERIMENTS.md).
"""

import random
from typing import List, Sequence, Tuple

from repro.core.advertisement import Advertisement
from repro.core.stages import AttributeStageAssociation
from repro.events.base import PropertyEvent
from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.operators import ALL, EQ
from repro.workloads.distributions import ZipfSampler

#: Generality order, most general first (paper §5.2 filter formats).
BIB_SCHEMA: Tuple[str, ...] = ("year", "conference", "author", "title")

BIB_EVENT_CLASS = "BibRecord"


class BibRecord:
    """One bibliographic record, following the ``get_*`` event convention."""

    def __init__(self, year: int, conference: str, author: str, title: str):
        self._year = year
        self._conference = conference
        self._author = author
        self._title = title

    def get_year(self) -> int:
        return self._year

    def get_conference(self) -> str:
        return self._conference

    def get_author(self) -> str:
        return self._author

    def get_title(self) -> str:
        return self._title

    def to_property_event(self) -> PropertyEvent:
        return PropertyEvent(
            year=self._year,
            conference=self._conference,
            author=self._author,
            title=self._title,
        )

    def __repr__(self) -> str:
        return (
            f"BibRecord({self._year}, {self._conference!r}, "
            f"{self._author!r}, {self._title!r})"
        )


class BibliographicWorkload:
    """Record universe + event/subscription samplers.

    ``record_exponent`` skews which records are published and subscribed
    (hot papers); ``author_exponent`` skews how records are attributed
    (prolific authors); ``sibling_rate`` controls how often consecutive
    records share their (year, conference, author) triple, which directly
    tunes the subscriber-level matching rate: only title-level (stage-0)
    filtering separates siblings.
    """

    def __init__(
        self,
        rng: random.Random,
        n_years: int = 6,
        n_conferences: int = 8,
        n_authors: int = 300,
        n_records: int = 500,
        author_exponent: float = 0.9,
        record_exponent: float = 0.9,
        sibling_rate: float = 0.0,
    ):
        if min(n_years, n_conferences, n_authors, n_records) < 1:
            raise ValueError("all domain sizes must be at least 1")
        if not 0.0 <= sibling_rate < 1.0:
            raise ValueError(f"sibling_rate must be in [0, 1), got {sibling_rate}")
        self.years = list(range(1990, 1990 + n_years))
        self.conferences = [f"conf-{i}" for i in range(n_conferences)]
        self.authors = [f"author-{i}" for i in range(n_authors)]
        author_sampler = ZipfSampler(self.authors, author_exponent)
        year_sampler = ZipfSampler(self.years, 0.3)
        conference_sampler = ZipfSampler(self.conferences, 0.5)
        # With probability ``sibling_rate`` a record shares its (year,
        # conference, author) triple with the previous one — these
        # "siblings" are exactly what title-level (stage-0) filtering has
        # to separate, so the rate directly tunes the subscriber MR.
        self.records: List[BibRecord] = []
        for i in range(n_records):
            if self.records and rng.random() < sibling_rate:
                previous = self.records[-1]
                record = BibRecord(
                    year=previous.get_year(),
                    conference=previous.get_conference(),
                    author=previous.get_author(),
                    title=f"title-{i}",
                )
            else:
                record = BibRecord(
                    year=year_sampler.sample(rng),
                    conference=conference_sampler.sample(rng),
                    author=author_sampler.sample(rng),
                    title=f"title-{i}",
                )
            self.records.append(record)
        self._record_sampler = ZipfSampler(self.records, record_exponent)

    # ------------------------------------------------------------------
    # Advertising
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Tuple[str, ...]:
        return BIB_SCHEMA

    def association(self, stages: int = 4) -> AttributeStageAssociation:
        """The §5.2 ``Gc``: drop one least-general attribute per stage."""
        return AttributeStageAssociation.uniform(BIB_SCHEMA, stages)

    def advertisement(self, stages: int = 4) -> Advertisement:
        return Advertisement(BIB_EVENT_CLASS, self.association(stages))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_record(self, rng: random.Random) -> BibRecord:
        return self._record_sampler.sample(rng)

    def sample_event(self, rng: random.Random) -> PropertyEvent:
        """One published event, already in property form."""
        return self.sample_record(rng).to_property_event()

    def sample_events(self, rng: random.Random, count: int) -> List[PropertyEvent]:
        return [self.sample_event(rng) for _ in range(count)]

    def subscription_for(
        self, record: BibRecord, wildcards: Sequence[str] = ()
    ) -> Filter:
        """The standard subscription filter for one record (§5.2 stage-0
        format), with optional wildcarded attributes."""
        values = {
            "year": record.get_year(),
            "conference": record.get_conference(),
            "author": record.get_author(),
            "title": record.get_title(),
        }
        wildcard_set = set(wildcards)
        unknown = wildcard_set - set(BIB_SCHEMA)
        if unknown:
            raise ValueError(f"unknown wildcard attributes {sorted(unknown)}")
        constraints = []
        for attribute in BIB_SCHEMA:
            if attribute in wildcard_set:
                constraints.append(AttributeConstraint(attribute, ALL))
            else:
                constraints.append(AttributeConstraint(attribute, EQ, values[attribute]))
        return Filter(constraints)

    def sample_subscription(
        self,
        rng: random.Random,
        wildcard_rate: float = 0.0,
        wildcard_attribute: str = "title",
    ) -> Filter:
        """A subscription for a (Zipf-)sampled record.

        With probability ``wildcard_rate`` the given attribute — and every
        attribute less general than it — is wildcarded, producing the
        §4.4 "missing attribute" subscriptions.
        """
        record = self.sample_record(rng)
        wildcards: Tuple[str, ...] = ()
        if wildcard_rate > 0 and rng.random() < wildcard_rate:
            position = BIB_SCHEMA.index(wildcard_attribute)
            wildcards = BIB_SCHEMA[position:]
        return self.subscription_for(record, wildcards)

    def sample_subscriptions(
        self, rng: random.Random, count: int, wildcard_rate: float = 0.0
    ) -> List[Filter]:
        return [
            self.sample_subscription(rng, wildcard_rate=wildcard_rate)
            for _ in range(count)
        ]
