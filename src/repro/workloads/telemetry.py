"""High-fan-in telemetry workload: many sensors, few rollup consumers.

The first workload class built for the in-broker information flows
(DESIGN §15): ``sensors_per_region`` sensors per region each emit a
random-walk :class:`Telemetry` reading per round, and the canonical
consumer is *not* interested in raw readings at all — it wants a
per-region average over a time window.  Republishing one
:data:`ROLLUP_EVENT_CLASS` event per region per window instead of every
raw reading is the bandwidth trade the flows experiment measures
(``experiments/flows.py``): at 10× fan-in the rollup cuts delivered
events and downlink bytes ≥5×.
"""

import random
from typing import Dict, List, Optional, Tuple

from repro.core.advertisement import Advertisement
from repro.core.stages import AttributeStageAssociation
from repro.events.base import CLASS_ATTRIBUTE
from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.operators import EQ
from repro.streams.spec import Aggregate, FlowSpec, WindowSpec

#: Generality order: class, region (the routing key), sensor, reading.
TELEMETRY_SCHEMA: Tuple[str, ...] = (CLASS_ATTRIBUTE, "region", "sensor", "reading")

TELEMETRY_EVENT_CLASS = "Telemetry"
ROLLUP_EVENT_CLASS = "TelemetryRollup"

#: Schema of the derived per-region rollup events (window emission
#: attributes, generality-ordered), matching
#: :meth:`repro.streams.spec.FlowSpec.output_schema`.
ROLLUP_SCHEMA: Tuple[str, ...] = (
    CLASS_ATTRIBUTE,
    "region",
    "avg_reading",
    "window_start",
    "window_end",
    "n",
)


class Telemetry:
    """One sensor reading (accessor convention, like :class:`Stock`)."""

    def __init__(self, region: str, sensor: str, reading: float):
        self._region = region
        self._sensor = sensor
        self._reading = reading

    def get_region(self) -> str:
        return self._region

    def get_sensor(self) -> str:
        return self._sensor

    def get_reading(self) -> float:
        return self._reading

    def __repr__(self) -> str:
        return f"Telemetry({self._region!r}, {self._sensor!r}, {self._reading!r})"


class TelemetryWorkload:
    """Per-sensor random-walk readings over a fixed region/sensor grid."""

    def __init__(
        self,
        rng: random.Random,
        n_regions: int = 4,
        sensors_per_region: int = 10,
        base_reading: float = 20.0,
        volatility: float = 0.5,
    ):
        if n_regions < 1 or sensors_per_region < 1:
            raise ValueError("need at least one region and one sensor")
        self.regions: List[str] = [f"r{i}" for i in range(n_regions)]
        self.sensors: Dict[str, List[str]] = {
            region: [f"{region}-s{j:02d}" for j in range(sensors_per_region)]
            for region in self.regions
        }
        self.volatility = volatility
        self._readings: Dict[str, float] = {
            sensor: base_reading
            for sensors in self.sensors.values()
            for sensor in sensors
        }
        self._rng = rng

    @property
    def schema(self) -> Tuple[str, ...]:
        return TELEMETRY_SCHEMA

    def association(self, stages: int = 3) -> AttributeStageAssociation:
        return AttributeStageAssociation.uniform(TELEMETRY_SCHEMA, stages)

    def advertisement(self, stages: int = 3) -> Advertisement:
        return Advertisement(TELEMETRY_EVENT_CLASS, self.association(stages))

    def rollup_association(self, stages: int = 3) -> AttributeStageAssociation:
        return AttributeStageAssociation.uniform(ROLLUP_SCHEMA, stages)

    def rollup_advertisement(self, stages: int = 3) -> Advertisement:
        return Advertisement(ROLLUP_EVENT_CLASS, self.rollup_association(stages))

    # -- event stream ------------------------------------------------

    def next_reading(self, region: str, sensor: str) -> Telemetry:
        """Advance one sensor's random walk and emit its reading."""
        value = self._readings[sensor] + self._rng.uniform(
            -self.volatility, self.volatility
        )
        self._readings[sensor] = value
        return Telemetry(region, sensor, round(value, 3))

    def readings_round(self) -> List[Telemetry]:
        """One reading from every sensor, in grid order (one fan-in unit)."""
        return [
            self.next_reading(region, sensor)
            for region in self.regions
            for sensor in self.sensors[region]
        ]

    # -- subscriptions and flows -------------------------------------

    def archive_subscription(self) -> Filter:
        """Every raw reading (class-only filter).

        An archiver holding this in a subtree pulls the full raw stream
        through that subtree's brokers — which is how a flow hosted
        *below* the root gets its input: flows tap events transiting
        their broker, they do not add routing state of their own.
        """
        return Filter(
            [AttributeConstraint(CLASS_ATTRIBUTE, EQ, TELEMETRY_EVENT_CLASS)]
        )

    def raw_subscription(self, region: str) -> Filter:
        """All raw readings of one region (the flow-free dashboard)."""
        return Filter(
            [
                AttributeConstraint(CLASS_ATTRIBUTE, EQ, TELEMETRY_EVENT_CLASS),
                AttributeConstraint("region", EQ, region),
            ]
        )

    def sensor_subscription(self, region: str, sensor_index: int = 0) -> Filter:
        """One sensor's raw feed (the raw-path witness subscription)."""
        sensor = self.sensors[region][sensor_index]
        return Filter(
            [
                AttributeConstraint(CLASS_ATTRIBUTE, EQ, TELEMETRY_EVENT_CLASS),
                AttributeConstraint("region", EQ, region),
                AttributeConstraint("sensor", EQ, sensor),
            ]
        )

    def rollup_subscription(self, region: str) -> Filter:
        """One region's derived rollup feed (the flow-backed dashboard)."""
        return Filter(
            [
                AttributeConstraint(CLASS_ATTRIBUTE, EQ, ROLLUP_EVENT_CLASS),
                AttributeConstraint("region", EQ, region),
            ]
        )

    def rollup_flow(
        self,
        window: float = 1.0,
        name: str = "region-rollup",
        broker: Optional[str] = None,
    ) -> FlowSpec:
        """The canonical flow: per-region tumbling-window average."""
        return FlowSpec(
            name=name,
            input_filter=Filter(
                [AttributeConstraint(CLASS_ATTRIBUTE, EQ, TELEMETRY_EVENT_CLASS)]
            ),
            output_class=ROLLUP_EVENT_CLASS,
            operator=WindowSpec(
                kind="tumbling",
                mode="time",
                size=window,
                group_by=("region",),
                aggregates=(Aggregate("reading", "avg", "avg_reading"),),
            ),
            broker=broker,
        )
