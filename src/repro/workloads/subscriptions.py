"""Generic subscription generators with controllable structure.

The placement and merging behaviour of the overlay depends on how
*similar* subscriptions are (§4.2: similar subscriptions should cluster)
— this module generates filter populations whose similarity is an
explicit knob: ``cluster_count`` seeds of rigid equality constraints,
each spawning variants that differ only in a numeric bound, which is
precisely the ``f1``/``f2`` relationship of Example 5.
"""

import random
from typing import List, Optional, Sequence, Tuple

from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.operators import ALL, EQ, LT


class SubscriptionGenerator:
    """Population generator over a categorical schema + one numeric attr.

    ``schema`` lists the categorical attributes (generality order) with
    their domain sizes; ``numeric_attribute`` gets a ``<`` bound drawn
    from ``numeric_range``.
    """

    def __init__(
        self,
        schema: Sequence[Tuple[str, int]],
        numeric_attribute: str = "price",
        numeric_range: Tuple[float, float] = (10.0, 1000.0),
    ):
        if not schema:
            raise ValueError("need at least one categorical attribute")
        self.schema = list(schema)
        self.numeric_attribute = numeric_attribute
        self.numeric_range = numeric_range

    @property
    def attributes(self) -> List[str]:
        return [name for name, _ in self.schema] + [self.numeric_attribute]

    def _random_rigid(self, rng: random.Random) -> List[AttributeConstraint]:
        return [
            AttributeConstraint(name, EQ, f"{name}-{rng.randrange(domain)}")
            for name, domain in self.schema
        ]

    def random_filter(self, rng: random.Random) -> Filter:
        lo, hi = self.numeric_range
        bound = round(rng.uniform(lo, hi), 2)
        return Filter(
            self._random_rigid(rng)
            + [AttributeConstraint(self.numeric_attribute, LT, bound)]
        )

    def clustered_population(
        self,
        rng: random.Random,
        cluster_count: int,
        cluster_size: int,
    ) -> List[Filter]:
        """``cluster_count`` groups of ``cluster_size`` similar filters.

        Filters within a group share every equality constraint and differ
        only in the numeric bound — Example 5's ``f1``/``f2`` shape, the
        best case for covering merges and similarity placement.
        """
        lo, hi = self.numeric_range
        population: List[Filter] = []
        for _ in range(cluster_count):
            rigid = self._random_rigid(rng)
            for _ in range(cluster_size):
                bound = round(rng.uniform(lo, hi), 2)
                population.append(
                    Filter(
                        rigid + [AttributeConstraint(self.numeric_attribute, LT, bound)]
                    )
                )
        return population

    def dissimilar_population(self, rng: random.Random, count: int) -> List[Filter]:
        """Independent filters: the anti-clustered control population."""
        return [self.random_filter(rng) for _ in range(count)]

    def with_wildcards(
        self,
        rng: random.Random,
        filters: Sequence[Filter],
        rate: float,
        attribute: Optional[str] = None,
    ) -> List[Filter]:
        """Replace an attribute's constraint with ``ALL`` at the given rate."""
        target = attribute or self.schema[-1][0]
        result = []
        for filter_ in filters:
            if rng.random() < rate:
                constraints = [
                    AttributeConstraint(target, ALL)
                    if c.attribute == target
                    else c
                    for c in filter_.constraints
                ]
                result.append(Filter(constraints))
            else:
                result.append(filter_)
        return result
