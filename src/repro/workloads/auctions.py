"""Auction workload: the second event class of Example 5.

The paper's ``f4`` filter::

    f4 = (class, "Auction", =) (Product, "Vehicle", =)
         (Kind, "Car", =) (Capacity, 2K, <) (price, 10K, <)

fixes the generality order class > product > kind > capacity > price,
exactly Example 6's five-attribute ``G_Auction`` with stage prefixes
``[5, 4, 3, 1]``.
"""

import random
from typing import List, Tuple

from repro.core.advertisement import Advertisement
from repro.core.stages import AttributeStageAssociation
from repro.events.base import CLASS_ATTRIBUTE
from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.operators import EQ, LT
from repro.workloads.distributions import CategoricalSampler

AUCTION_SCHEMA: Tuple[str, ...] = (
    CLASS_ATTRIBUTE,
    "product",
    "kind",
    "capacity",
    "price",
)

AUCTION_EVENT_CLASS = "Auction"

#: Example 6's stage prefixes: stage 1 keeps 4 attributes, stage 2 keeps
#: 3, stage 3 keeps only the class.
EXAMPLE6_PREFIXES = (5, 4, 3, 1)

_CATALOG = {
    "Vehicle": ["Car", "Truck", "Motorcycle"],
    "Electronics": ["Phone", "Laptop", "Camera"],
    "Furniture": ["Table", "Chair", "Sofa"],
}


class Auction:
    """An auction listing event (accessor convention)."""

    def __init__(self, product: str, kind: str, capacity: int, price: float):
        self._product = product
        self._kind = kind
        self._capacity = capacity
        self._price = price

    def get_product(self) -> str:
        return self._product

    def get_kind(self) -> str:
        return self._kind

    def get_capacity(self) -> int:
        return self._capacity

    def get_price(self) -> float:
        return self._price

    def __repr__(self) -> str:
        return (
            f"Auction({self._product!r}, {self._kind!r}, "
            f"capacity={self._capacity}, price={self._price})"
        )


class AuctionWorkload:
    """Random auction listings over a small product catalog."""

    def __init__(self, rng: random.Random, max_capacity: int = 5000, max_price: float = 50_000.0):
        self._rng = rng
        self.max_capacity = max_capacity
        self.max_price = max_price
        products = list(_CATALOG)
        self._product_sampler = CategoricalSampler(products, [3.0, 2.0, 1.0])

    @property
    def schema(self) -> Tuple[str, ...]:
        return AUCTION_SCHEMA

    def association(self) -> AttributeStageAssociation:
        """Example 6's ``G_Auction`` (stage prefixes 5, 4, 3, 1)."""
        return AttributeStageAssociation.from_prefixes(
            AUCTION_SCHEMA, EXAMPLE6_PREFIXES
        )

    def advertisement(self) -> Advertisement:
        return Advertisement(AUCTION_EVENT_CLASS, self.association())

    def next_listing(self) -> Auction:
        product = self._product_sampler.sample(self._rng)
        kind = self._rng.choice(_CATALOG[product])
        capacity = self._rng.randrange(1, self.max_capacity)
        price = round(self._rng.uniform(10.0, self.max_price), 2)
        return Auction(product, kind, capacity, price)

    def listings(self, count: int) -> List[Auction]:
        return [self.next_listing() for _ in range(count)]

    def sample_subscription(self, rng: random.Random) -> Filter:
        """An ``f4``-shaped filter for a random product/kind."""
        product = self._product_sampler.sample(rng)
        kind = rng.choice(_CATALOG[product])
        capacity_cap = rng.randrange(self.max_capacity // 4, self.max_capacity)
        price_cap = round(rng.uniform(self.max_price / 4, self.max_price), 2)
        return Filter(
            [
                AttributeConstraint(CLASS_ATTRIBUTE, EQ, AUCTION_EVENT_CLASS),
                AttributeConstraint("product", EQ, product),
                AttributeConstraint("kind", EQ, kind),
                AttributeConstraint("capacity", LT, capacity_cap),
                AttributeConstraint("price", LT, price_cap),
            ]
        )

    @staticmethod
    def example5_f4() -> Filter:
        """The literal ``f4`` of Example 5 (lower-cased attribute names)."""
        return Filter(
            [
                AttributeConstraint(CLASS_ATTRIBUTE, EQ, AUCTION_EVENT_CLASS),
                AttributeConstraint("product", EQ, "Vehicle"),
                AttributeConstraint("kind", EQ, "Car"),
                AttributeConstraint("capacity", LT, 2000),
                AttributeConstraint("price", LT, 10_000.0),
            ]
        )
