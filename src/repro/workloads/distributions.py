"""Seeded samplers over finite domains.

Real pub/sub workloads are skewed (a few hot authors, symbols, topics);
the Zipf sampler provides that skew reproducibly.  All samplers take the
``random.Random`` stream to draw from at call time, so one generator can
serve multiple independent streams.
"""

import bisect
import itertools
import random
from typing import Generic, List, Sequence, TypeVar

T = TypeVar("T")


class CategoricalSampler(Generic[T]):
    """Sample from explicit per-item weights.

    >>> rng = random.Random(1)
    >>> sampler = CategoricalSampler(["a", "b"], [0.9, 0.1])
    >>> sampler.sample(rng) in ("a", "b")
    True
    """

    def __init__(self, items: Sequence[T], weights: Sequence[float]):
        if len(items) != len(weights):
            raise ValueError(
                f"{len(items)} items but {len(weights)} weights"
            )
        if not items:
            raise ValueError("cannot sample from an empty domain")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("total weight must be positive")
        self.items: List[T] = list(items)
        self._cumulative: List[float] = list(
            itertools.accumulate(w / total for w in weights)
        )
        # Guard against floating-point shortfall at the top.
        self._cumulative[-1] = 1.0

    def sample(self, rng: random.Random) -> T:
        return self.items[bisect.bisect_left(self._cumulative, rng.random())]

    def sample_many(self, rng: random.Random, count: int) -> List[T]:
        return [self.sample(rng) for _ in range(count)]

    def __len__(self) -> int:
        return len(self.items)


class ZipfSampler(CategoricalSampler[T]):
    """Zipf-distributed sampling: item ``k`` has weight ``1 / (k+1)^s``.

    ``s = 0`` degenerates to uniform; ``s = 1`` is the classic Zipf law.
    Items are ranked in the order given (first item most popular).
    """

    def __init__(self, items: Sequence[T], exponent: float = 1.0):
        if exponent < 0:
            raise ValueError(f"exponent must be non-negative, got {exponent}")
        weights = [1.0 / (rank + 1) ** exponent for rank in range(len(items))]
        super().__init__(items, weights)
        self.exponent = exponent


def uniform_sampler(items: Sequence[T]) -> CategoricalSampler[T]:
    """Uniform categorical sampler over ``items``."""
    return CategoricalSampler(items, [1.0] * len(items))
