"""Stock-quote workload: the running example of Sections 3 and 4.

:class:`Stock` is the paper's Example-4 event class translated to the
Python accessor convention (``get_symbol`` / ``get_price`` /
``get_volume``); :class:`StockWorkload` generates a random-walk quote
stream plus threshold subscriptions shaped like Example 5's ``f1``-``f3``
(``class = Stock and symbol = X and price < bound``).
"""

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.advertisement import Advertisement
from repro.core.stages import AttributeStageAssociation
from repro.events.base import CLASS_ATTRIBUTE
from repro.filters.constraints import AttributeConstraint
from repro.filters.filter import Filter
from repro.filters.operators import EQ, LT
from repro.workloads.distributions import ZipfSampler

#: Generality order: class, then symbol, then price (Example 5's filters).
STOCK_SCHEMA: Tuple[str, ...] = (CLASS_ATTRIBUTE, "symbol", "price")

STOCK_EVENT_CLASS = "Stock"


class Stock:
    """The paper's Example-4 ``Stock`` event class.

    Attributes are private; the event system deduces the effective
    attributes ``symbol`` and ``price`` from the public access methods.
    """

    def __init__(self, symbol: str, price: float, volume: int = 0):
        self._symbol = symbol
        self._price = price
        self._volume = volume

    def get_symbol(self) -> str:
        return self._symbol

    def get_price(self) -> float:
        return self._price

    def get_volume(self) -> int:
        return self._volume

    def __repr__(self) -> str:
        return f"Stock({self._symbol!r}, {self._price!r}, volume={self._volume})"


class StockWorkload:
    """Random-walk quotes over a Zipf-popular symbol universe."""

    def __init__(
        self,
        rng: random.Random,
        symbols: Optional[Sequence[str]] = None,
        n_symbols: int = 50,
        initial_price: float = 100.0,
        volatility: float = 0.02,
        symbol_exponent: float = 0.8,
    ):
        if symbols is None:
            symbols = [f"SYM{i:03d}" for i in range(n_symbols)]
        if not symbols:
            raise ValueError("need at least one symbol")
        self.symbols: List[str] = list(symbols)
        self.volatility = volatility
        self._sampler = ZipfSampler(self.symbols, symbol_exponent)
        self._prices = {symbol: initial_price for symbol in self.symbols}
        self._rng = rng

    @property
    def schema(self) -> Tuple[str, ...]:
        return STOCK_SCHEMA

    def association(self, stages: int = 3) -> AttributeStageAssociation:
        return AttributeStageAssociation.uniform(STOCK_SCHEMA, stages)

    def advertisement(self, stages: int = 3) -> Advertisement:
        return Advertisement(STOCK_EVENT_CLASS, self.association(stages))

    def next_quote(self) -> Stock:
        """Advance one symbol's random walk and emit its quote."""
        symbol = self._sampler.sample(self._rng)
        drift = 1.0 + self._rng.uniform(-self.volatility, self.volatility)
        price = max(0.01, self._prices[symbol] * drift)
        self._prices[symbol] = price
        volume = self._rng.randrange(100, 100_000)
        return Stock(symbol, round(price, 2), volume)

    def quotes(self, count: int) -> List[Stock]:
        return [self.next_quote() for _ in range(count)]

    def price_of(self, symbol: str) -> float:
        return self._prices[symbol]

    def sample_subscription(
        self, rng: random.Random, band: float = 0.05
    ) -> Filter:
        """An Example-5-style filter: symbol equality + price ceiling.

        The ceiling sits within ``band`` of the symbol's current price, so
        a live stream keeps crossing it in both directions.
        """
        symbol = self._sampler.sample(rng)
        ceiling = self._prices[symbol] * (1.0 + rng.uniform(-band, band))
        return Filter(
            [
                AttributeConstraint(CLASS_ATTRIBUTE, EQ, STOCK_EVENT_CLASS),
                AttributeConstraint("symbol", EQ, symbol),
                AttributeConstraint("price", LT, round(ceiling, 2)),
            ]
        )
