"""Synthetic workloads for the evaluation (Section 5.2) and examples.

- :mod:`~repro.workloads.distributions` — seeded Zipf/uniform samplers;
- :mod:`~repro.workloads.bibliographic` — the paper's simulation
  workload (author/conference/year/title records);
- :mod:`~repro.workloads.stocks` — stock-quote events (Examples 1-5);
- :mod:`~repro.workloads.auctions` — auction events (Example 5's f4);
- :mod:`~repro.workloads.subscriptions` — generic subscription
  generators with controllable similarity and wildcard rates;
- :mod:`~repro.workloads.telemetry` — high-fan-in sensor readings with
  per-region rollup flows (the information-flow workload, DESIGN §15).
"""

from repro.workloads.auctions import Auction, AuctionWorkload
from repro.workloads.bibliographic import BibliographicWorkload, BibRecord
from repro.workloads.distributions import CategoricalSampler, ZipfSampler
from repro.workloads.stocks import Stock, StockWorkload
from repro.workloads.subscriptions import SubscriptionGenerator
from repro.workloads.telemetry import Telemetry, TelemetryWorkload

__all__ = [
    "Auction",
    "AuctionWorkload",
    "BibRecord",
    "BibliographicWorkload",
    "CategoricalSampler",
    "Stock",
    "StockWorkload",
    "SubscriptionGenerator",
    "Telemetry",
    "TelemetryWorkload",
    "ZipfSampler",
]
